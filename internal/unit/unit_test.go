package unit

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseNumberEnglish(t *testing.T) {
	cases := map[string]float64{
		"0.5":    0.5,
		"1":      1,
		"-60":    -60,
		"1.0E+6": 1e6,
		"0":      0,
		"  2.25": 2.25,
		"1e-3":   0.001,
	}
	for in, want := range cases {
		got, err := ParseNumber(in)
		if err != nil {
			t.Fatalf("ParseNumber(%q): %v", in, err)
		}
		if got != want {
			t.Errorf("ParseNumber(%q) = %v, want %v", in, got, want)
		}
	}
}

func TestParseNumberGerman(t *testing.T) {
	cases := map[string]float64{
		"0,5":      0.5,
		"1,00E+06": 1e6,
		"2,00E+05": 2e5,
		"-0,3":     -0.3,
		"1,1":      1.1,
	}
	for in, want := range cases {
		got, err := ParseNumber(in)
		if err != nil {
			t.Fatalf("ParseNumber(%q): %v", in, err)
		}
		if got != want {
			t.Errorf("ParseNumber(%q) = %v, want %v", in, got, want)
		}
	}
}

func TestParseNumberInf(t *testing.T) {
	for _, in := range []string{"INF", "inf", "+INF", "∞"} {
		got, err := ParseNumber(in)
		if err != nil || !math.IsInf(got, 1) {
			t.Errorf("ParseNumber(%q) = %v, %v; want +Inf", in, got, err)
		}
	}
	got, err := ParseNumber("-INF")
	if err != nil || !math.IsInf(got, -1) {
		t.Errorf("ParseNumber(-INF) = %v, %v; want -Inf", got, err)
	}
}

func TestParseNumberRejects(t *testing.T) {
	for _, in := range []string{"", "abc", "1.234,5", "1,2,3", "0x10", "--1"} {
		if _, err := ParseNumber(in); err == nil {
			t.Errorf("ParseNumber(%q) unexpectedly succeeded", in)
		}
	}
}

func TestFormatNumber(t *testing.T) {
	cases := map[float64]string{
		0.5:          "0.5",
		1e6:          "1e+06",
		math.Inf(1):  "INF",
		math.Inf(-1): "-INF",
		0:            "0",
	}
	for in, want := range cases {
		if got := FormatNumber(in); got != want {
			t.Errorf("FormatNumber(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestFormatNumberDE(t *testing.T) {
	if got := FormatNumberDE(0.5); got != "0,5" {
		t.Errorf("FormatNumberDE(0.5) = %q, want 0,5", got)
	}
	if got := FormatNumberDE(280); got != "280" {
		t.Errorf("FormatNumberDE(280) = %q, want 280", got)
	}
}

func TestNumberRoundTrip(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) {
			return true // NaN never appears in sheets
		}
		got, err := ParseNumber(FormatNumber(x))
		if err != nil {
			return false
		}
		return got == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNumberRoundTripGerman(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) {
			return true
		}
		s := FormatNumberDE(x)
		// German formatting must never contain a decimal point.
		if strings.Contains(s, ".") {
			return false
		}
		got, err := ParseNumber(s)
		if err != nil {
			return false
		}
		return got == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseUnit(t *testing.T) {
	cases := map[string]Unit{
		"V":    Volt,
		"Ohm":  Ohm,
		"Ω":    Ohm,
		"A":    Ampere,
		"s":    Second,
		"Hz":   Hertz,
		"%":    Percent,
		"":     None,
		" V ":  Volt,
		"degC": Degree,
	}
	for in, want := range cases {
		got, err := ParseUnit(in)
		if err != nil {
			t.Fatalf("ParseUnit(%q): %v", in, err)
		}
		if got != want {
			t.Errorf("ParseUnit(%q) = %v, want %v", in, got, want)
		}
	}
	if _, err := ParseUnit("parsec"); err == nil {
		t.Error("ParseUnit(parsec) unexpectedly succeeded")
	}
}

func TestUnitString(t *testing.T) {
	if Volt.String() != "V" || Ohm.String() != "Ohm" {
		t.Errorf("unexpected unit symbols: %q %q", Volt, Ohm)
	}
	if got := Unit(99).String(); got != "Unit(99)" {
		t.Errorf("Unit(99).String() = %q", got)
	}
}

func TestValue(t *testing.T) {
	v := V(0.5, Second)
	if v.String() != "0.5 s" {
		t.Errorf("Value.String() = %q", v.String())
	}
	if !Inf(Ohm).IsInf() {
		t.Error("Inf(Ohm).IsInf() = false")
	}
	if V(1, Volt).IsInf() {
		t.Error("V(1,V).IsInf() = true")
	}
	if got := V(3, None).String(); got != "3" {
		t.Errorf("dimensionless Value.String() = %q", got)
	}
}

func TestRangeContains(t *testing.T) {
	r := NewRange(-60, 60, Volt)
	for _, f := range []float64{-60, 0, 60, 59.999} {
		if !r.Contains(f) {
			t.Errorf("%v.Contains(%v) = false", r, f)
		}
	}
	for _, f := range []float64{-60.001, 61, math.Inf(1)} {
		if r.Contains(f) {
			t.Errorf("%v.Contains(%v) = true", r, f)
		}
	}
}

func TestRangeInfiniteBound(t *testing.T) {
	r := NewRange(0, math.Inf(1), Ohm)
	if !r.Contains(math.Inf(1)) {
		t.Error("unbounded range must contain +Inf")
	}
	if !r.Contains(5e6) {
		t.Error("unbounded range must contain any finite positive value")
	}
	if r.Contains(-1) {
		t.Error("range [0,Inf] must not contain -1")
	}
}

func TestRangeNormalises(t *testing.T) {
	r := NewRange(10, -10, Volt)
	if r.Min != -10 || r.Max != 10 {
		t.Errorf("NewRange did not normalise: %+v", r)
	}
}

func TestRangeContainsRange(t *testing.T) {
	outer := NewRange(0, 1e6, Ohm)
	inner := NewRange(100, 5000, Ohm)
	if !outer.ContainsRange(inner) {
		t.Error("outer.ContainsRange(inner) = false")
	}
	if inner.ContainsRange(outer) {
		t.Error("inner.ContainsRange(outer) = true")
	}
}

func TestRangeString(t *testing.T) {
	r := NewRange(0, 0.3, None)
	if got := r.String(); got != "[0, 0.3]" {
		t.Errorf("Range.String() = %q", got)
	}
	rv := NewRange(-60, 60, Volt)
	if got := rv.String(); got != "[-60, 60] V" {
		t.Errorf("Range.String() = %q", got)
	}
}

func TestRangeWidth(t *testing.T) {
	if w := NewRange(2, 5, None).Width(); w != 3 {
		t.Errorf("Width = %v, want 3", w)
	}
	if w := NewRange(0, math.Inf(1), Ohm).Width(); !math.IsInf(w, 1) {
		t.Errorf("unbounded Width = %v, want +Inf", w)
	}
}

func TestParseBits(t *testing.T) {
	cases := []struct {
		in    string
		value uint64
		width int
	}{
		{"0001B", 1, 4},
		{"0B", 0, 1},
		{"1B", 1, 1},
		{"1010B", 10, 4},
		{"11111111B", 255, 8},
		{" 0001B ", 1, 4},
		{"0001b", 1, 4},
	}
	for _, c := range cases {
		v, w, err := ParseBits(c.in)
		if err != nil {
			t.Fatalf("ParseBits(%q): %v", c.in, err)
		}
		if v != c.value || w != c.width {
			t.Errorf("ParseBits(%q) = (%d,%d), want (%d,%d)", c.in, v, w, c.value, c.width)
		}
	}
}

func TestParseBitsRejects(t *testing.T) {
	for _, in := range []string{"", "B", "0102B", "0001", "xB", strings.Repeat("1", 65) + "B"} {
		if _, _, err := ParseBits(in); err == nil {
			t.Errorf("ParseBits(%q) unexpectedly succeeded", in)
		}
	}
}

func TestFormatBits(t *testing.T) {
	if got := FormatBits(1, 4); got != "0001B" {
		t.Errorf("FormatBits(1,4) = %q", got)
	}
	if got := FormatBits(10, 4); got != "1010B" {
		t.Errorf("FormatBits(10,4) = %q", got)
	}
	if got := FormatBits(0, 0); got != "0B" {
		t.Errorf("FormatBits(0,0) = %q", got)
	}
}

func TestBitsRoundTrip(t *testing.T) {
	f := func(v uint64, w uint8) bool {
		width := int(w%64) + 1
		v &= (^uint64(0)) >> (64 - uint(width))
		got, gw, err := ParseBits(FormatBits(v, width))
		return err == nil && got == v && gw == width
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
