// Package unit provides physical quantities for the component-test tool
// chain: values carrying a unit, infinity handling (the paper's status
// table uses "INF" for an open contact), number parsing that accepts both
// German decimal commas ("0,5", "1,00E+06" — as printed in the paper's
// sheets) and English decimal points, and range checking used by the
// resource catalog.
package unit

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Unit enumerates the physical units that occur in component-test sheets,
// resource catalogs and generated scripts.
type Unit int

// The units understood by the tool chain. None marks dimensionless values
// (scale factors, counts, raw CAN data).
const (
	None Unit = iota
	Volt
	Ohm
	Ampere
	Second
	Hertz
	Percent
	Degree  // temperature, °C
	Bit     // raw binary payloads
	Decibel // reserved for acoustic components
)

var unitNames = map[Unit]string{
	None:    "",
	Volt:    "V",
	Ohm:     "Ohm",
	Ampere:  "A",
	Second:  "s",
	Hertz:   "Hz",
	Percent: "%",
	Degree:  "degC",
	Bit:     "b",
	Decibel: "dB",
}

// String returns the canonical symbol of the unit ("V", "Ohm", "s", …).
func (u Unit) String() string {
	if s, ok := unitNames[u]; ok {
		return s
	}
	return fmt.Sprintf("Unit(%d)", int(u))
}

// ParseUnit maps a symbol found in a sheet to a Unit. It accepts the
// spellings that appear in the paper's tables ("V", "Ω", "Ohm") plus
// common ASCII fallbacks. An empty string parses to None.
func ParseUnit(s string) (Unit, error) {
	switch strings.TrimSpace(s) {
	case "":
		return None, nil
	case "V", "v", "Volt", "volt":
		return Volt, nil
	case "Ohm", "ohm", "OHM", "Ω", "R":
		return Ohm, nil
	case "A", "a", "Ampere":
		return Ampere, nil
	case "s", "S", "sec", "Sec":
		return Second, nil
	case "Hz", "hz", "HZ":
		return Hertz, nil
	case "%", "pct":
		return Percent, nil
	case "degC", "°C", "C":
		return Degree, nil
	case "b", "bit", "Bit":
		return Bit, nil
	case "dB", "db":
		return Decibel, nil
	}
	return None, fmt.Errorf("unit: unknown unit %q", s)
}

// Value is a physical quantity: a float with a unit. Positive infinity is
// a legal magnitude and denotes an open contact / unbounded limit, exactly
// as "INF" in the paper's status table.
type Value struct {
	F float64
	U Unit
}

// V constructs a Value.
func V(f float64, u Unit) Value { return Value{F: f, U: u} }

// Inf returns the positive-infinity value for the given unit.
func Inf(u Unit) Value { return Value{F: math.Inf(1), U: u} }

// IsInf reports whether the magnitude is ±infinite.
func (v Value) IsInf() bool { return math.IsInf(v.F, 0) }

// String formats the value using FormatNumber and appends the unit symbol.
func (v Value) String() string {
	s := FormatNumber(v.F)
	if v.U == None {
		return s
	}
	return s + " " + v.U.String()
}

// ParseNumber parses a numeric cell as it appears in the paper's sheets.
// Accepted forms:
//
//	0.5        English decimal point
//	0,5        German decimal comma
//	1,00E+06   German scientific notation
//	INF, -INF  infinities (case-insensitive; "∞" also accepted)
//
// Plain thousands separators are NOT supported: a cell such as "1.234,5"
// is ambiguous in mixed-locale sheets and is rejected.
func ParseNumber(s string) (float64, error) {
	t := strings.TrimSpace(s)
	if t == "" {
		return 0, fmt.Errorf("unit: empty number")
	}
	switch strings.ToUpper(t) {
	case "INF", "+INF", "∞":
		return math.Inf(1), nil
	case "-INF", "-∞":
		return math.Inf(-1), nil
	}
	// Reject forms with both comma and point: ambiguous locale.
	hasComma := strings.Contains(t, ",")
	hasPoint := strings.Contains(t, ".")
	if hasComma && hasPoint {
		return 0, fmt.Errorf("unit: ambiguous number %q (mixes ',' and '.')", s)
	}
	if hasComma {
		if strings.Count(t, ",") > 1 {
			return 0, fmt.Errorf("unit: malformed number %q", s)
		}
		t = strings.Replace(t, ",", ".", 1)
	}
	f, err := strconv.ParseFloat(t, 64)
	if err != nil {
		return 0, fmt.Errorf("unit: malformed number %q", s)
	}
	return f, nil
}

// FormatNumber renders a float the way the generated XML scripts and
// regenerated tables print it: shortest round-trip representation with an
// English decimal point, infinities as "INF"/"-INF".
func FormatNumber(f float64) string {
	if math.IsInf(f, 1) {
		return "INF"
	}
	if math.IsInf(f, -1) {
		return "-INF"
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// FormatNumberDE renders a float with a German decimal comma, used when
// re-emitting the paper's sheets verbatim (the paper prints "0,5").
func FormatNumberDE(f float64) string {
	return strings.Replace(FormatNumber(f), ".", ",", 1)
}

// Range is a closed numeric interval with a unit, used by the resource
// catalog ("valid range for all parameters") and by measurement limits.
type Range struct {
	Min, Max float64
	U        Unit
}

// NewRange constructs a Range, normalising a reversed interval.
func NewRange(min, max float64, u Unit) Range {
	if min > max {
		min, max = max, min
	}
	return Range{Min: min, Max: max, U: u}
}

// Contains reports whether f lies inside the closed interval. Infinite
// bounds behave as expected: Contains(INF) is true iff Max is +INF.
func (r Range) Contains(f float64) bool {
	return f >= r.Min && f <= r.Max
}

// ContainsRange reports whether the entire interval o fits inside r.
func (r Range) ContainsRange(o Range) bool {
	return r.Contains(o.Min) && r.Contains(o.Max)
}

// Width returns Max-Min; it is +Inf for unbounded ranges.
func (r Range) Width() float64 { return r.Max - r.Min }

// String renders the range as "[min, max] unit".
func (r Range) String() string {
	s := "[" + FormatNumber(r.Min) + ", " + FormatNumber(r.Max) + "]"
	if r.U != None {
		s += " " + r.U.String()
	}
	return s
}

// ParseBits parses the paper's binary literal notation for CAN payloads:
// a string of 0/1 digits followed by the suffix 'B' (e.g. "0001B"). It
// returns the numeric value and the bit width.
func ParseBits(s string) (value uint64, width int, err error) {
	t := strings.TrimSpace(s)
	if len(t) < 2 || (t[len(t)-1] != 'B' && t[len(t)-1] != 'b') {
		return 0, 0, fmt.Errorf("unit: %q is not a binary literal (missing B suffix)", s)
	}
	digits := t[:len(t)-1]
	if len(digits) == 0 || len(digits) > 64 {
		return 0, 0, fmt.Errorf("unit: binary literal %q has unsupported width", s)
	}
	for _, c := range digits {
		if c != '0' && c != '1' {
			return 0, 0, fmt.Errorf("unit: binary literal %q contains non-binary digit %q", s, c)
		}
		value = value<<1 | uint64(c-'0')
	}
	return value, len(digits), nil
}

// FormatBits renders a value as the paper's binary literal notation with
// the given width (e.g. FormatBits(1, 4) == "0001B").
func FormatBits(value uint64, width int) string {
	if width <= 0 {
		width = 1
	}
	var b strings.Builder
	for i := width - 1; i >= 0; i-- {
		if value>>(uint(i))&1 == 1 {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	b.WriteByte('B')
	return b.String()
}
