package golint

import (
	"testing"

	"repro/internal/goanalysis"
)

// TestAnalyzersOnFixtures runs the whole suite over the committed
// fixture module and compares diagnostics against the `// want`
// expectations embedded in its sources, analysistest-style. The
// fixtures cover the positive and negative space of each analyzer:
// global math/rand vs. injected sources, time.Now and map-range
// printing under //lint:deterministic, run-path functions with and
// without contexts (plus the stand.Stand.Run allowlist entry), and
// guarded fields accessed with and without their mutex.
func TestAnalyzersOnFixtures(t *testing.T) {
	goanalysis.CheckExpectations(t, "testdata/module", Analyzers(), "./...")
}

// TestAnalyzerMetadata pins the suite's shape: stable order, unique
// names, documentation present.
func TestAnalyzerMetadata(t *testing.T) {
	as := Analyzers()
	if len(as) != 3 {
		t.Fatalf("got %d analyzers, want 3", len(as))
	}
	want := []string{"ctxpath", "guardedfield", "nodeterminism"}
	for i, a := range as {
		if a.Name != want[i] {
			t.Errorf("analyzer %d = %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q lacks doc or run function", a.Name)
		}
	}
}
