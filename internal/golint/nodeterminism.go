package golint

import (
	"go/ast"
	"go/types"

	"repro/internal/goanalysis"
)

// NoDeterminism promotes the repo's long-standing TestNoGlobalRandomness
// audit into a real analyzer. Package-level math/rand functions draw
// from the process-wide source, so any call makes exploration corpora
// and property tests depend on whatever else ran first; constructing
// sources (rand.New, rand.NewSource, …) is the sanctioned pattern and
// stays allowed. In packages carrying the //lint:deterministic
// directive the analyzer additionally bans time.Now and printing
// directly from a map range, the two classic ways wall-clock and hash
// ordering leak into output that must be byte-stable.
var NoDeterminism = &goanalysis.Analyzer{
	Name: "nodeterminism",
	Doc: "forbid the global math/rand source everywhere, and time.Now or " +
		"map-iteration-ordered output in //lint:deterministic packages",
	Run: runNoDeterminism,
}

// randConstructors are the package-level math/rand functions that build
// an injectable source instead of consuming the global one.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

func runNoDeterminism(p *goanalysis.Pass) error {
	deterministic := goanalysis.HasDirective(p.Files, DeterministicDirective)
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				fn := calleeFunc(p.TypesInfo, n)
				if fn == nil || fn.Pkg() == nil {
					return true
				}
				sig, _ := fn.Type().(*types.Signature)
				if sig != nil && sig.Recv() != nil {
					return true // methods (e.g. on an injected *rand.Rand) are fine
				}
				if pkg := fn.Pkg().Path(); pkg == "math/rand" || pkg == "math/rand/v2" {
					if !randConstructors[fn.Name()] {
						p.Reportf(n.Pos(),
							"%s draws from the global math/rand source; inject a seeded *rand.Rand instead",
							fn.FullName())
					}
				}
			case *ast.Ident:
				// time.Now is flagged on use, not just call: storing it in
				// a clock field smuggles the wall clock in the same way.
				if deterministic {
					if fn, ok := p.TypesInfo.Uses[n].(*types.Func); ok &&
						fn.Pkg() != nil && fn.Pkg().Path() == "time" && fn.Name() == "Now" {
						p.Reportf(n.Pos(),
							"time.Now in a deterministic package; inject a clock or take timestamps at the edge")
					}
				}
			case *ast.RangeStmt:
				if deterministic {
					checkMapRangeOutput(p, n)
				}
			}
			return true
		})
	}
	return nil
}

// checkMapRangeOutput flags fmt printing inside a range over a map:
// iteration order is randomized per process, so anything written from
// the loop body lands in a different order every run. The fix is to
// collect the keys, sort, and print from the slice.
func checkMapRangeOutput(p *goanalysis.Pass, rng *ast.RangeStmt) {
	tv, ok := p.TypesInfo.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(p.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" {
			return true
		}
		switch fn.Name() {
		case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
			p.Reportf(call.Pos(),
				"fmt.%s inside a map range emits hash-ordered output; sort the keys first",
				fn.Name())
		}
		return true
	})
}
