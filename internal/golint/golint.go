// Package golint holds the repo's custom Go analyzers, built on the
// internal/goanalysis framework and run by cmd/comptest-lint (and by
// the root determinism test). Three checks guard invariants the
// compiler cannot see:
//
//   - nodeterminism: no global math/rand anywhere; no time.Now or
//     map-iteration-ordered printing in packages marked with a
//     //lint:deterministic directive (explore, mutation, dist, report —
//     the packages whose byte-for-byte reproducibility the test suite
//     pins).
//   - ctxpath: exported Run*/Execute*/Campaign* entry points must
//     thread a context.Context as their first parameter so campaign
//     cancellation reaches every layer.
//   - guardedfield: struct fields documented "guarded by <mu>" must
//     only be touched under a lexically visible <mu>.Lock()/RLock(),
//     or from a function whose name signals the lock convention.
//
// Findings can be silenced in place with a same-line
// "lint:ignore <analyzer> reason" comment.
package golint

import (
	"go/ast"
	"go/types"

	"repro/internal/goanalysis"
)

// DeterministicDirective marks a package whose output must be
// byte-for-byte reproducible across runs.
const DeterministicDirective = "lint:deterministic"

// Analyzers returns every analyzer in the suite, in a stable order.
func Analyzers() []*goanalysis.Analyzer {
	return []*goanalysis.Analyzer{CtxPath, GuardedField, NoDeterminism}
}

// calleeFunc resolves the function a call expression invokes, or nil
// for builtins, conversions and indirect calls through variables.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// isContextContext reports whether t is (or aliases) context.Context.
func isContextContext(t types.Type) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
