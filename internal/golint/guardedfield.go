package golint

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/goanalysis"
)

// GuardedField checks documented lock discipline. A struct field whose
// doc or line comment says "guarded by <mu>" may only be read or
// written (a) after a lexically earlier <mu>.Lock() or <mu>.RLock() in
// the same function, (b) inside a function whose name ends in "Locked"
// (the repo convention for callers-hold-the-lock helpers), or (c)
// inside a constructor (New*/new*), where the value is not yet shared.
// The check is lexical and per-package — a linter, not a proof — but it
// catches the common bug of touching a shared field on a new code path
// without taking the mutex.
var GuardedField = &goanalysis.Analyzer{
	Name: "guardedfield",
	Doc: "fields documented \"guarded by <mu>\" must be accessed under " +
		"that mutex",
	Run: runGuardedField,
}

func runGuardedField(p *goanalysis.Pass) error {
	guarded := collectGuarded(p)
	if len(guarded) == 0 {
		return nil
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || exemptFromGuard(fd.Name.Name) {
				continue
			}
			checkGuardedAccesses(p, guarded, fd)
		}
	}
	return nil
}

// collectGuarded maps each field object annotated "guarded by <mu>" to
// the mutex name it names.
func collectGuarded(p *goanalysis.Pass) map[*types.Var]string {
	out := map[*types.Var]string{}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				mux := guardAnnotation(field)
				if mux == "" {
					continue
				}
				for _, name := range field.Names {
					if v, ok := p.TypesInfo.Defs[name].(*types.Var); ok {
						out[v] = mux
					}
				}
			}
			return true
		})
	}
	return out
}

// guardAnnotation extracts the mutex name from a field's "guarded by
// <mu>" doc or line comment, or "" if the field carries none.
func guardAnnotation(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		text := cg.Text()
		i := strings.Index(text, "guarded by ")
		if i < 0 {
			continue
		}
		rest := text[i+len("guarded by "):]
		end := 0
		for end < len(rest) && (isIdentChar(rest[end])) {
			end++
		}
		if end > 0 {
			return rest[:end]
		}
	}
	return ""
}

func isIdentChar(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}

// exemptFromGuard reports whether a function's name opts it out of the
// lexical lock check.
func exemptFromGuard(name string) bool {
	switch {
	case strings.HasSuffix(name, "Locked"),
		strings.HasPrefix(name, "New"), strings.HasPrefix(name, "new"),
		name == "Lock", name == "Unlock", name == "RLock", name == "RUnlock":
		return true
	}
	return false
}

func checkGuardedAccesses(p *goanalysis.Pass, guarded map[*types.Var]string, fd *ast.FuncDecl) {
	// Positions of every <mu>.Lock()/RLock() call in the body, by mutex
	// name.
	locks := map[string][]int{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		if mux := terminalName(sel.X); mux != "" {
			locks[mux] = append(locks[mux], int(call.Pos()))
		}
		return true
	})
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selection, ok := p.TypesInfo.Selections[sel]
		if !ok || selection.Kind() != types.FieldVal {
			return true
		}
		v, ok := selection.Obj().(*types.Var)
		if !ok {
			return true
		}
		mux, ok := guarded[v]
		if !ok {
			return true
		}
		for _, pos := range locks[mux] {
			if pos < int(sel.Pos()) {
				return true
			}
		}
		p.Reportf(sel.Sel.Pos(),
			"field %q is guarded by %q but %s does not hold it here",
			v.Name(), mux, fd.Name.Name)
		return true
	})
}

// terminalName is the last identifier of an expression like j.mu or mu:
// the name the lock is taken through.
func terminalName(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return e.Sel.Name
	}
	return ""
}
