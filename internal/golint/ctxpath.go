package golint

import (
	"go/ast"
	"go/types"

	"repro/internal/goanalysis"
)

// CtxPath enforces the run-path contract: every exported function or
// method whose name says it executes work (Run*, Execute*, Campaign*)
// must accept a context.Context as its first parameter, so a cancelled
// campaign unwinds through every layer instead of stalling in one that
// forgot to thread the context.
var CtxPath = &goanalysis.Analyzer{
	Name: "ctxpath",
	Doc: "exported Run*/Execute*/Campaign* functions must take a " +
		"context.Context first parameter",
	Run: runCtxPath,
}

// ctxPathAllow exempts entry points that predate or deliberately sit
// outside the contract, keyed "pkg.Func" or "pkg.Recv.Func" (package
// base name, pointer receivers stripped).
var ctxPathAllow = map[string]string{
	"stand.Stand.Run":           "legacy synchronous wrapper; RunContext is the cancellable form",
	"event.Scheduler.RunUntil":  "pure virtual-time pump, completes without blocking",
	"explore.Trace.RunStarted":  "observer callback invoked per run, not a run itself",
	"explore.Trace.RunFinished": "observer callback invoked per run, not a run itself",
	"lint.Run":                  "pure in-memory analysis, nothing to cancel",
}

// runPrefixes are the name prefixes that put a function on the run path.
var runPrefixes = []string{"Run", "Execute", "Campaign"}

func runCtxPath(p *goanalysis.Pass) error {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !fd.Name.IsExported() || !hasRunPrefix(fd.Name.Name) {
				continue
			}
			fn, _ := p.TypesInfo.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			if _, ok := ctxPathAllow[qualifiedName(p.Pkg, fn)]; ok {
				continue
			}
			sig := fn.Type().(*types.Signature)
			if sig.Recv() != nil && !exportedRecv(sig.Recv().Type()) {
				continue // methods on unexported types are not API
			}
			if sig.Params().Len() > 0 && isContextContext(sig.Params().At(0).Type()) {
				continue
			}
			p.Reportf(fd.Name.Pos(),
				"exported %s does not take a context.Context first parameter; "+
					"cancellation cannot reach it", describe(p.Pkg, fn))
		}
	}
	return nil
}

func hasRunPrefix(name string) bool {
	for _, pre := range runPrefixes {
		if len(name) >= len(pre) && name[:len(pre)] == pre {
			return true
		}
	}
	return false
}

// qualifiedName renders fn as "pkg.Func" or "pkg.Recv.Func" with the
// package base name and any pointer receiver stripped.
func qualifiedName(pkg *types.Package, fn *types.Func) string {
	name := pkg.Name() + "."
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		if rn := recvTypeName(recv.Type()); rn != "" {
			name += rn + "."
		}
	}
	return name + fn.Name()
}

func describe(pkg *types.Package, fn *types.Func) string {
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		return "method " + qualifiedName(pkg, fn)
	}
	return "function " + qualifiedName(pkg, fn)
}

func recvTypeName(t types.Type) string {
	if ptr, ok := types.Unalias(t).(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := types.Unalias(t).(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

func exportedRecv(t types.Type) bool {
	name := recvTypeName(t)
	return name != "" && ast.IsExported(name)
}
