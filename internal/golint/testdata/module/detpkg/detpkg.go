// Package detpkg must produce byte-stable output, so it opts into the
// stricter determinism checks.
//
//lint:deterministic
package detpkg

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// Stamp reads the wall clock: flagged in a deterministic package.
func Stamp() time.Time {
	return time.Now() // want "time.Now in a deterministic package"
}

// Clock smuggles the wall clock out as a value: still flagged.
func Clock() func() time.Time {
	return time.Now // want "time.Now in a deterministic package"
}

// Dump prints straight out of a map range (flagged), then does it the
// sanctioned way: collect, sort, print.
func Dump(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want "inside a map range"
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s=%d\n", k, m[k])
	}
}
