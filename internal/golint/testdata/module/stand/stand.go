// Package stand mirrors the repo's stand package closely enough to
// exercise the ctxpath allowlist: Stand.Run is the legacy synchronous
// wrapper and must not be flagged.
package stand

type Stand struct{}

// Run matches the allowlist entry "stand.Stand.Run": no finding.
func (s *Stand) Run() {}
