// Package randuse exercises the global-source half of nodeterminism.
package randuse

import (
	mrand "math/rand"
	v2 "math/rand/v2"
)

// Draw consumes the process-global source: flagged.
func Draw() int {
	return mrand.Intn(6) // want "global math/rand"
}

// DrawV2 does the same through math/rand/v2: flagged.
func DrawV2() int {
	return v2.Int() // want "global math/rand"
}

// Sanctioned builds an injectable source: the allowed pattern.
func Sanctioned() *mrand.Rand {
	return mrand.New(mrand.NewSource(1))
}

// Injected draws from a seeded source passed in: fine, it is a method
// call, not a package-level function.
func Injected(r *mrand.Rand) int {
	return r.Intn(6)
}

// Suppressed shows the in-source escape hatch.
func Suppressed() int {
	return mrand.Int() // lint:ignore nodeterminism fixture exercises suppression
}
