// Package guarded exercises the guardedfield lock-discipline check.
package guarded

import "sync"

type counter struct {
	mu sync.Mutex
	n  int // guarded by mu
}

// Inc holds the mutex: compliant.
func (c *counter) Inc() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

// Peek reads the field with no lock in sight: flagged.
func (c *counter) Peek() int {
	return c.n // want "does not hold it"
}

// valueLocked follows the callers-hold-the-lock convention: exempt.
func (c *counter) valueLocked() int {
	return c.n
}

// newCounter initializes before the value is shared: exempt.
func newCounter(start int) *counter {
	c := &counter{}
	c.n = start
	return c
}

// TryRead touches the field before taking the lock: the early access is
// flagged, the one after Lock is not.
func (c *counter) TryRead() int {
	if c.n > 0 { // want "does not hold it"
		return 1
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

type table struct {
	mu   sync.RWMutex
	rows map[string]int // guarded by mu
}

// Lookup reads under RLock: compliant.
func (t *table) Lookup(k string) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.rows[k]
}
