// Package runpath exercises the ctxpath run-path contract.
package runpath

import "context"

type Engine struct{}

// RunCampaign threads a context: compliant.
func (e *Engine) RunCampaign(ctx context.Context) error { return nil }

// Execute forgot the context: flagged.
func (e *Engine) Execute() error { return nil } // want "context.Context first parameter"

// RunAll is a package-level entry point without a context: flagged.
func RunAll(n int) error { return nil } // want "context.Context first parameter"

type worker struct{}

// Run on an unexported receiver is not API: ignored.
func (w *worker) Run() {}

// runLocal is unexported: ignored.
func runLocal() {}
