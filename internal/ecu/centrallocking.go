package ecu

import (
	"time"

	"repro/internal/analog"
)

// CentralLocking models the second of the "two ECUs of the next S-class":
// a central locking unit.
//
// Requirements implemented:
//
//	R1  A lock request (CAN signal CL_RQ = 1) drives the lock motors with
//	    a 500 ms pulse and sets the status signal CL_LOCKED = 1.
//	R2  An unlock request (CL_RQ = 2) drives the unlock motors with a
//	    500 ms pulse and clears CL_LOCKED.
//	R3  Auto-lock: when the vehicle speed (CAN signal V_SPEED, km/h)
//	    reaches 8 km/h and the doors are unlocked, the unit locks as in R1.
//	R4  A crash input (low-active pin CRASH_SW) immediately unlocks and
//	    inhibits locking while active.
//
// Electrical interface: motor drivers on pins LOCK_MOT and UNLOCK_MOT
// (high-side, measurable with get_u), crash sense input CRASH_SW.
// CAN interface: receives CL_CMD (CL_RQ bits 0..1) and VEH_DYN (V_SPEED
// bits 0..7), transmits CL_STAT (CL_LOCKED bit 0).
type CentralLocking struct {
	Base

	lockMot   *HighSideOutput
	unlockMot *HighSideOutput
	crashIn   *DigitalInput
	rqIn      *CANIn
	speedIn   *CANIn
	lockedOut *CANOutput

	locked     bool
	pulseUntil time.Duration
	pulseKind  int // 0 none, 1 lock, 2 unlock
	prevRq     uint64
	prevAbove  bool
}

// CentralLockingPins is the connector pinout.
var CentralLockingPins = []string{"LOCK_MOT", "UNLOCK_MOT", "CRASH_SW"}

// PulseLen is the R1/R2 motor pulse length.
const PulseLen = 500 * time.Millisecond

// AutoLockKmh is the R3 speed threshold.
const AutoLockKmh = 8

// NewCentralLocking creates the model.
func NewCentralLocking() *CentralLocking {
	m := &CentralLocking{}
	m.ModelName = "central_locking"
	m.registerFaults(
		FaultInfo{Name: "no_autolock", Requirement: "R3",
			Doc:     "never auto-locks",
			Signals: []string{"V_SPEED", "LOCK_MOT"}},
		FaultInfo{Name: "autolock_3kmh", Requirement: "R3",
			Doc:     "auto-locks at 3 km/h instead of 8 km/h",
			Signals: []string{"V_SPEED", "LOCK_MOT"}},
		FaultInfo{Name: "short_pulse", Requirement: "R1",
			Doc:     "150 ms motor pulse instead of 500 ms",
			Signals: []string{"LOCK_MOT", "UNLOCK_MOT"}},
		FaultInfo{Name: "no_status", Requirement: "R1",
			Doc:     "CL_LOCKED never updated",
			Signals: []string{"CL_LOCKED"}},
		FaultInfo{Name: "crash_ignored", Requirement: "R4",
			Doc:     "crash input ignored",
			Signals: []string{"CRASH_SW", "UNLOCK_MOT"}},
	)
	return m
}

// PinNames implements ECU.
func (m *CentralLocking) PinNames() []string {
	out := make([]string, len(CentralLockingPins))
	copy(out, CentralLockingPins)
	return out
}

// Attach implements ECU.
func (m *CentralLocking) Attach(env *Env) error {
	if err := m.attachBase(env); err != nil {
		return err
	}
	m.lockMot = m.AddOutputHighSide("LOCK_MOT", 0.2, 1000)
	m.unlockMot = m.AddOutputHighSide("UNLOCK_MOT", 0.2, 1000)
	m.crashIn = m.AddInputPullUp("CRASH_SW", 1000)
	m.rqIn = m.CANInput("CL_CMD", 0, 2, 0)
	m.speedIn = m.CANInput("VEH_DYN", 0, 8, 0)
	m.lockedOut = m.CANOut("CL_STAT", 0, 1)
	m.Reset()
	return nil
}

// Reset implements ECU.
func (m *CentralLocking) Reset() {
	m.locked = false
	m.pulseUntil = 0
	m.pulseKind = 0
	m.prevRq = 0
	m.prevAbove = false
	if m.lockMot != nil {
		m.lockMot.Set(false)
		m.unlockMot.Set(false)
		m.lockedOut.Set(0)
	}
}

// Locked reports the internal lock state (for white-box tests).
func (m *CentralLocking) Locked() bool { return m.locked }

func (m *CentralLocking) startPulse(now time.Duration, kind int) {
	length := PulseLen
	if m.Fault("short_pulse") {
		length = 150 * time.Millisecond
	}
	m.pulseKind = kind
	m.pulseUntil = now + length
}

// QuiescentUntil implements Quiescer. With stable inputs the only
// self-scheduled transition is the motor pulse ending.
func (m *CentralLocking) QuiescentUntil(now time.Duration) (time.Duration, bool) {
	if m.pulseKind != 0 {
		// A wake in the past (pulse expired, cleanup due on the next
		// tick) simply means "nothing may be skipped right now".
		return m.pulseUntil, true
	}
	// Lock-state changes need a request edge, a speed crossing or a
	// crash transition — all input-driven.
	return Forever, true
}

// Tick implements ECU.
func (m *CentralLocking) Tick(now time.Duration, sol *analog.Solution) {
	crash := m.crashIn.Active(sol) && !m.Fault("crash_ignored")

	rq := m.rqIn.Value()
	edge := rq != m.prevRq
	m.prevRq = rq

	if crash {
		// R4: immediate unlock, locking inhibited.
		if m.locked {
			m.locked = false
			m.startPulse(now, 2)
		}
	} else {
		if edge && rq == 1 && !m.locked {
			m.locked = true
			m.startPulse(now, 1)
		}
		if edge && rq == 2 && m.locked {
			m.locked = false
			m.startPulse(now, 2)
		}
		// R3: auto-lock fires on the rising crossing of the speed
		// threshold; a manual unlock at speed stays unlocked until the
		// speed dips and crosses again (once per driving cycle).
		threshold := uint64(AutoLockKmh)
		if m.Fault("autolock_3kmh") {
			threshold = 3
		}
		above := m.speedIn.Value() >= threshold
		if !m.Fault("no_autolock") && above && !m.prevAbove && !m.locked {
			m.locked = true
			m.startPulse(now, 1)
		}
		m.prevAbove = above
	}

	if now >= m.pulseUntil {
		m.pulseKind = 0
	}
	m.lockMot.Set(m.pulseKind == 1)
	m.unlockMot.Set(m.pulseKind == 2)
	if !m.Fault("no_status") {
		if m.locked {
			m.lockedOut.Set(1)
		} else {
			m.lockedOut.Set(0)
		}
	}
}

var _ ECU = (*CentralLocking)(nil)
var _ Quiescer = (*CentralLocking)(nil)
