package ecu

import (
	"math"
	"testing"
	"time"
)

// extRig wires an exterior light model onto the shared test rig.
func extRig(t *testing.T) (*rig, *ExteriorLight, *Ticker) {
	r := newRig(t)
	m := NewExteriorLight()
	tick := r.attach(m)
	return r, m, tick
}

// setExt drives the packed EXT_CMD word: LIGHT_SW, IGN, NIGHT, FOG_SW.
func setExt(r *rig, sw, ign, night, fog uint64) {
	r.putCAN("EXT_CMD", 0, 2, sw)
	r.putCAN("EXT_CMD", 2, 1, ign)
	r.putCAN("EXT_CMD", 3, 1, night)
	r.putCAN("EXT_CMD", 4, 1, fog)
}

func TestExteriorLowBeam(t *testing.T) {
	r, _, tick := extRig(t)
	defer tick.Stop()
	setExt(r, 0, 1, 0, 0)
	r.run(time.Second)
	if r.motorHigh("LB_OUT") {
		t.Fatal("beam on with switch off")
	}
	setExt(r, 2, 1, 0, 0)
	r.run(time.Second)
	if !r.motorHigh("LB_OUT") {
		t.Fatal("beam off with switch on (R1)")
	}
	// No beam without ignition (at day: no follow-me-home).
	setExt(r, 2, 0, 0, 0)
	r.run(time.Second)
	if r.motorHigh("LB_OUT") {
		t.Error("beam on without ignition at day")
	}
}

func TestExteriorDRLPWM(t *testing.T) {
	r, _, tick := extRig(t)
	defer tick.Stop()
	setExt(r, 0, 1, 0, 0)
	// Sample DRL_OUT over one second and count rising edges.
	edges := 0
	prev := false
	stop := r.sched.Every(2*time.Millisecond, func() {
		high := r.voltage("DRL_OUT") > 6
		if high && !prev {
			edges++
		}
		prev = high
	})
	r.run(time.Second)
	stop()
	if edges < 20 || edges > 30 {
		t.Errorf("DRL edges in 1 s = %d, want ~25 (R2)", edges)
	}
}

func TestExteriorDRLOffAtNight(t *testing.T) {
	r, _, tick := extRig(t)
	defer tick.Stop()
	setExt(r, 0, 1, 1, 0)
	r.run(time.Second)
	if r.voltage("DRL_OUT") > 1 {
		t.Error("DRL running at night (R2)")
	}
}

func TestExteriorFollowMeHome(t *testing.T) {
	r, _, tick := extRig(t)
	defer tick.Stop()
	setExt(r, 2, 1, 1, 0) // driving at night
	r.run(time.Second)
	if !r.motorHigh("LB_OUT") {
		t.Fatal("beam off while driving")
	}
	setExt(r, 0, 0, 1, 0) // park: switch off, ignition off
	r.run(time.Second)
	if !r.motorHigh("LB_OUT") {
		t.Fatal("follow-me-home did not hold the beam (R3)")
	}
	r.run(25 * time.Second)
	if !r.motorHigh("LB_OUT") {
		t.Error("beam off before the 30 s follow-me-home time")
	}
	r.run(10 * time.Second)
	if r.motorHigh("LB_OUT") {
		t.Error("beam still on after 30 s")
	}
}

func TestExteriorNoFMHAtDay(t *testing.T) {
	r, _, tick := extRig(t)
	defer tick.Stop()
	setExt(r, 2, 1, 0, 0)
	r.run(time.Second)
	setExt(r, 0, 0, 0, 0)
	r.run(time.Second)
	if r.motorHigh("LB_OUT") {
		t.Error("follow-me-home armed at day")
	}
}

func TestExteriorRearFog(t *testing.T) {
	r, m, tick := extRig(t)
	defer tick.Stop()
	setExt(r, 2, 1, 0, 1) // beam + fog
	r.run(time.Second)
	if got := m.fogRel.Ohms(); got != FogContactOhms {
		t.Errorf("fog contact = %v Ω, want %v (R4)", got, FogContactOhms)
	}
	setExt(r, 2, 1, 0, 0)
	r.run(time.Second)
	if !math.IsInf(m.fogRel.Ohms(), 1) {
		t.Error("fog contact closed with switch off")
	}
	// No fog without low beam.
	setExt(r, 0, 1, 0, 1)
	r.run(time.Second)
	if !math.IsInf(m.fogRel.Ohms(), 1) {
		t.Error("fog contact closed without low beam")
	}
}

func TestExteriorFaults(t *testing.T) {
	t.Run("no_fmh", func(t *testing.T) {
		r, m, tick := extRig(t)
		defer tick.Stop()
		if err := m.InjectFault("no_fmh"); err != nil {
			t.Fatal(err)
		}
		setExt(r, 2, 1, 1, 0)
		r.run(time.Second)
		setExt(r, 0, 0, 1, 0)
		r.run(time.Second)
		if r.motorHigh("LB_OUT") {
			t.Error("no_fmh fault not observable")
		}
	})
	t.Run("fmh_10s", func(t *testing.T) {
		r, m, tick := extRig(t)
		defer tick.Stop()
		if err := m.InjectFault("fmh_10s"); err != nil {
			t.Fatal(err)
		}
		setExt(r, 2, 1, 1, 0)
		r.run(time.Second)
		setExt(r, 0, 0, 1, 0)
		r.run(15 * time.Second) // healthy unit still lit at 15 s
		if r.motorHigh("LB_OUT") {
			t.Error("fmh_10s fault not observable at 15 s")
		}
	})
	t.Run("fog_stuck_open", func(t *testing.T) {
		r, m, tick := extRig(t)
		defer tick.Stop()
		if err := m.InjectFault("fog_stuck_open"); err != nil {
			t.Fatal(err)
		}
		setExt(r, 2, 1, 0, 1)
		r.run(time.Second)
		if !math.IsInf(m.fogRel.Ohms(), 1) {
			t.Error("fog_stuck_open fault not observable")
		}
	})
	t.Run("drl_at_night", func(t *testing.T) {
		r, m, tick := extRig(t)
		defer tick.Stop()
		if err := m.InjectFault("drl_at_night"); err != nil {
			t.Fatal(err)
		}
		setExt(r, 0, 1, 1, 0)
		r.run(65 * time.Millisecond)
		// Somewhere within a PWM period the output is high.
		seen := false
		for i := 0; i < 25; i++ {
			r.run(2 * time.Millisecond)
			if r.voltage("DRL_OUT") > 6 {
				seen = true
			}
		}
		if !seen {
			t.Error("drl_at_night fault not observable")
		}
	})
}

func TestExteriorReset(t *testing.T) {
	r, m, tick := extRig(t)
	defer tick.Stop()
	setExt(r, 2, 1, 0, 1)
	r.run(time.Second)
	m.Reset()
	if m.lb.On() || m.drl.On() || !math.IsInf(m.fogRel.Ohms(), 1) {
		t.Error("Reset did not restore power-on state")
	}
}
