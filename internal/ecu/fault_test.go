package ecu

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// allModels builds one fresh instance of every built-in model.
func allModels() []ECU {
	return []ECU{
		NewInteriorLight(),
		NewCentralLocking(),
		NewWindowLifter(),
		NewExteriorLight(),
	}
}

func TestFaultLifecycle(t *testing.T) {
	for _, m := range allModels() {
		names := m.FaultNames()
		if len(names) == 0 {
			t.Fatalf("%s: no faults registered", m.Name())
		}
		for _, n := range names {
			if err := m.InjectFault(n); err != nil {
				t.Fatalf("%s: inject %s: %v", m.Name(), n, err)
			}
		}
		b := m.(interface {
			Fault(string) bool
			ClearFaults()
		})
		for _, n := range names {
			if !b.Fault(n) {
				t.Errorf("%s: fault %s not active after InjectFault", m.Name(), n)
			}
		}
		b.ClearFaults()
		for _, n := range names {
			if b.Fault(n) {
				t.Errorf("%s: fault %s still active after ClearFaults", m.Name(), n)
			}
		}
	}
}

func TestInjectUnknownFault(t *testing.T) {
	m := NewInteriorLight()
	err := m.InjectFault("warp_core_breach")
	if err == nil {
		t.Fatal("unknown fault accepted")
	}
	// The error must identify the model and list the valid injections.
	for _, want := range []string{"interior_light", "warp_core_breach", "only_fl"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q lacks %q", err, want)
		}
	}
}

// TestFaultIntrospection: every model describes every fault — name,
// violated requirement, doc and at least one involved signal, in
// FaultNames order — so the mutation subsystem can attribute kill
// scores per requirement and cross-reference survivors with lint.
func TestFaultIntrospection(t *testing.T) {
	for _, m := range allModels() {
		infos := Faults(m)
		names := m.FaultNames()
		if len(infos) != len(names) {
			t.Fatalf("%s: %d infos for %d faults", m.Name(), len(infos), len(names))
		}
		for i, fi := range infos {
			if fi.Name != names[i] {
				t.Errorf("%s: info %d is %q, want %q", m.Name(), i, fi.Name, names[i])
			}
			if fi.Requirement == "" || fi.Doc == "" || len(fi.Signals) == 0 {
				t.Errorf("%s/%s: incomplete FaultInfo %+v", m.Name(), fi.Name, fi)
			}
		}
	}
}

// TestFaultsWithoutIntrospection covers the fallback for third-party
// models that only implement the narrow ECU interface.
func TestFaultsWithoutIntrospection(t *testing.T) {
	var e ECU = struct{ ECU }{NewInteriorLight()} // hides FaultInfos
	infos := Faults(e)
	if len(infos) != len(e.FaultNames()) {
		t.Fatalf("fallback produced %d infos for %d names", len(infos), len(e.FaultNames()))
	}
	for i, fi := range infos {
		if fi.Name != e.FaultNames()[i] || fi.Requirement != "" {
			t.Errorf("fallback info %d = %+v", i, fi)
		}
	}
}

// TestFaultRaceCleanliness hammers the fault set from a controller
// goroutine while the model ticks in the simulation goroutine — the
// situation a campaign creates when it injects faults into a running
// mutant. Run under -race this proves InjectFault/ClearFaults/Fault
// need no external locking.
func TestFaultRaceCleanliness(t *testing.T) {
	r := newRig(t)
	m := NewInteriorLight()
	tick := r.attach(m)
	defer tick.Stop()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, n := range m.FaultNames() {
				_ = m.InjectFault(n)
			}
			_ = m.InjectFault("nonsense")
			m.ClearFaults()
		}
	}()
	// The simulation side: ticking reads the fault set on every cycle.
	r.sched.Advance(2 * time.Second) // 200 ticks
	close(stop)
	wg.Wait()
	if tick.Err() != nil {
		t.Fatal(tick.Err())
	}
}
