package ecu

import (
	"math"
	"testing"
	"time"

	"repro/internal/analog"
	"repro/internal/canbus"
	"repro/internal/event"
)

// rig is a miniature test stand: battery, bus, scheduler, and helpers to
// pull pins low/high and to send CAN signals — the raw ingredients the
// real stand package composes later.
type rig struct {
	t     *testing.T
	env   *Env
	sched *event.Scheduler
	tx    *canbus.TxGroup
	decs  map[string]*analog.Resistor
}

func newRig(t *testing.T) *rig {
	t.Helper()
	sched := &event.Scheduler{}
	net := analog.NewNetwork()
	ub := net.Node("ubatt")
	net.AddVSource("bat", ub, analog.Ground, 12)
	bus := canbus.NewBus(sched)
	db := canbus.NewDB()
	env := &Env{Net: net, Sched: sched, Bus: bus, DB: db, UbattVolts: 12, UbattNode: ub}
	standNode := bus.Attach("stand", nil)
	return &rig{
		t:     t,
		env:   env,
		sched: sched,
		tx:    canbus.NewTxGroup(standNode, db, 20*time.Millisecond, sched),
		decs:  map[string]*analog.Resistor{},
	}
}

// attach wires the model and starts its ticker.
func (r *rig) attach(m ECU) *Ticker {
	r.t.Helper()
	if err := m.Attach(r.env); err != nil {
		r.t.Fatal(err)
	}
	return StartTicker(m, r.env)
}

// putR applies a resistance from the pin to ground (the decade).
func (r *rig) putR(pin string, ohms float64) {
	if d, ok := r.decs[pin]; ok {
		d.SetOhms(ohms)
		return
	}
	r.decs[pin] = r.env.Net.AddResistor("decade."+pin, r.env.Net.Node(pin), analog.Ground, ohms)
}

// putCAN sends a CAN signal value.
func (r *rig) putCAN(msg string, start, length int, v uint64) {
	r.t.Helper()
	if err := r.tx.SetSignal(msg, start, length, v); err != nil {
		r.t.Fatal(err)
	}
}

// run advances simulated time.
func (r *rig) run(d time.Duration) { r.sched.Advance(d) }

// voltage returns the settled pin voltage.
func (r *rig) voltage(pin string) float64 {
	r.t.Helper()
	sol, err := r.env.Net.Solve()
	if err != nil {
		r.t.Fatal(err)
	}
	return sol.Voltage(r.env.Net.Node(pin))
}

// lampHigh reports whether INT_ILL reads in the paper's "Ho" band
// (0.7…1.1 × Ubatt between INT_ILL_F and INT_ILL_R).
func (r *rig) lampHigh() bool {
	v := r.voltage("INT_ILL_F") - r.voltage("INT_ILL_R")
	return v >= 0.7*12 && v <= 1.1*12
}

// lampLow reports the "Lo" band (0…0.3 × Ubatt).
func (r *rig) lampLow() bool {
	v := r.voltage("INT_ILL_F") - r.voltage("INT_ILL_R")
	return v >= 0 && v <= 0.3*12
}

const inf = math.MaxFloat64 // helper alias for readability in putR calls

func openDoor(r *rig, pin string)  { r.putR(pin, 0) }
func closeDoor(r *rig, pin string) { r.putR(pin, math.Inf(1)) }

// --------------------------------------------------------- interior light --

func TestInteriorLightDayNoLight(t *testing.T) {
	r := newRig(t)
	m := NewInteriorLight()
	tick := r.attach(m)
	defer tick.Stop()
	// Day (NIGHT=0), open a door: no illumination (R1).
	r.putCAN("BCM_STAT", 4, 1, 0)
	closeDoor(r, "DS_FL")
	r.run(time.Second)
	openDoor(r, "DS_FL")
	r.run(time.Second)
	if !r.lampLow() {
		t.Errorf("lamp on at day: V=%v", r.voltage("INT_ILL_F"))
	}
	if tick.Err() != nil {
		t.Fatal(tick.Err())
	}
}

func TestInteriorLightNightDoorOpen(t *testing.T) {
	r := newRig(t)
	m := NewInteriorLight()
	tick := r.attach(m)
	defer tick.Stop()
	r.putCAN("BCM_STAT", 4, 1, 1) // night
	closeDoor(r, "DS_FL")
	r.run(time.Second)
	if !r.lampLow() {
		t.Error("lamp on with doors closed")
	}
	openDoor(r, "DS_FL")
	r.run(time.Second)
	if !r.lampHigh() {
		t.Errorf("lamp off at night with door open: V=%v", r.voltage("INT_ILL_F"))
	}
	closeDoor(r, "DS_FL")
	r.run(time.Second)
	if !r.lampLow() {
		t.Error("lamp stayed on after closing (R4)")
	}
}

func TestInteriorLightAnyDoor(t *testing.T) {
	for _, pin := range []string{"DS_FL", "DS_FR", "DS_RL", "DS_RR"} {
		r := newRig(t)
		m := NewInteriorLight()
		tick := r.attach(m)
		r.putCAN("BCM_STAT", 4, 1, 1)
		r.run(time.Second)
		openDoor(r, pin)
		r.run(time.Second)
		if !r.lampHigh() {
			t.Errorf("door %s does not light the lamp", pin)
		}
		tick.Stop()
	}
}

func TestInteriorLight300sTimeout(t *testing.T) {
	// The paper's steps 6-8: open at night -> Ho; after 280 s still Ho;
	// 25 s later (>300 s) -> Lo.
	r := newRig(t)
	m := NewInteriorLight()
	tick := r.attach(m)
	defer tick.Stop()
	r.putCAN("BCM_STAT", 4, 1, 1)
	r.run(time.Second)
	openDoor(r, "DS_FL")
	r.run(500 * time.Millisecond)
	if !r.lampHigh() {
		t.Fatal("lamp off right after opening")
	}
	r.run(280 * time.Second)
	if !r.lampHigh() {
		t.Error("lamp off before the 300 s limit (at ~280 s)")
	}
	r.run(25 * time.Second)
	if !r.lampLow() {
		t.Error("lamp still on after the 300 s limit")
	}
}

func TestInteriorLightTimerRestartsOnReopen(t *testing.T) {
	r := newRig(t)
	m := NewInteriorLight()
	tick := r.attach(m)
	defer tick.Stop()
	r.putCAN("BCM_STAT", 4, 1, 1)
	openDoor(r, "DS_FL")
	r.run(299 * time.Second)
	closeDoor(r, "DS_FL")
	r.run(time.Second)
	openDoor(r, "DS_FL")
	r.run(250 * time.Second) // fresh timer: still within 300 s
	if !r.lampHigh() {
		t.Error("timer did not restart on re-opening")
	}
}

func TestInteriorLightFaults(t *testing.T) {
	cases := []struct {
		fault string
		check func(r *rig, m *InteriorLight) bool // true = fault visible
	}{
		{"stuck_off", func(r *rig, m *InteriorLight) bool {
			r.putCAN("BCM_STAT", 4, 1, 1)
			openDoor(r, "DS_FL")
			r.run(time.Second)
			return r.lampLow() // should be high
		}},
		{"ignore_night", func(r *rig, m *InteriorLight) bool {
			r.putCAN("BCM_STAT", 4, 1, 0) // day
			openDoor(r, "DS_FL")
			r.run(time.Second)
			return r.lampHigh() // should be low at day
		}},
		{"timeout_200s", func(r *rig, m *InteriorLight) bool {
			r.putCAN("BCM_STAT", 4, 1, 1)
			openDoor(r, "DS_FL")
			r.run(280 * time.Second)
			return r.lampLow() // healthy unit would still be high
		}},
		{"no_timeout", func(r *rig, m *InteriorLight) bool {
			r.putCAN("BCM_STAT", 4, 1, 1)
			openDoor(r, "DS_FL")
			r.run(306 * time.Second)
			return r.lampHigh() // healthy unit would be off
		}},
		{"only_fl", func(r *rig, m *InteriorLight) bool {
			r.putCAN("BCM_STAT", 4, 1, 1)
			openDoor(r, "DS_FR")
			r.run(time.Second)
			return r.lampLow() // healthy unit lights for any door
		}},
		{"inverted_output", func(r *rig, m *InteriorLight) bool {
			r.putCAN("BCM_STAT", 4, 1, 1)
			closeDoor(r, "DS_FL")
			r.run(time.Second)
			return r.lampHigh() // off-state drives high
		}},
	}
	for _, c := range cases {
		r := newRig(t)
		m := NewInteriorLight()
		if err := m.Attach(r.env); err != nil {
			t.Fatal(err)
		}
		if err := m.InjectFault(c.fault); err != nil {
			t.Fatalf("%s: %v", c.fault, err)
		}
		tick := StartTicker(m, r.env)
		if !c.check(r, m) {
			t.Errorf("fault %q not observable", c.fault)
		}
		tick.Stop()
	}
}

func TestInteriorLightUnknownFault(t *testing.T) {
	m := NewInteriorLight()
	if err := m.InjectFault("flux_capacitor"); err == nil {
		t.Error("unknown fault accepted")
	}
	if len(m.FaultNames()) < 5 {
		t.Errorf("FaultNames = %v", m.FaultNames())
	}
}

func TestInteriorLightReset(t *testing.T) {
	r := newRig(t)
	m := NewInteriorLight()
	tick := r.attach(m)
	defer tick.Stop()
	r.putCAN("BCM_STAT", 4, 1, 1)
	openDoor(r, "DS_FL")
	r.run(time.Second)
	if !m.LampOn() {
		t.Fatal("precondition: lamp on")
	}
	m.Reset()
	if m.LampOn() {
		t.Error("Reset did not clear lamp state")
	}
	if !r.lampLow() {
		t.Error("Reset did not release the output driver")
	}
}

func TestAttachTwice(t *testing.T) {
	r := newRig(t)
	m := NewInteriorLight()
	if err := m.Attach(r.env); err != nil {
		t.Fatal(err)
	}
	if err := m.Attach(r.env); err == nil {
		t.Error("second Attach accepted")
	}
	if err := NewInteriorLight().Attach(nil); err == nil {
		t.Error("nil env accepted")
	}
}

// -------------------------------------------------------- central locking --

func clRig(t *testing.T) (*rig, *CentralLocking, *canbus.Monitor, *Ticker) {
	r := newRig(t)
	m := NewCentralLocking()
	// Listen to the ECU's status frames.
	mon := canbus.NewMonitor()
	r.env.Bus.Attach("listener", mon.Rx)
	tick := r.attach(m)
	r.putR("CRASH_SW", math.Inf(1)) // no crash
	return r, m, mon, tick
}

func (r *rig) motorHigh(pin string) bool {
	v := r.voltage(pin)
	return v >= 0.7*12
}

func TestCentralLockingLockUnlock(t *testing.T) {
	r, m, mon, tick := clRig(t)
	defer tick.Stop()
	r.run(time.Second)
	if m.Locked() {
		t.Fatal("locked at power-on")
	}
	r.putCAN("CL_CMD", 0, 2, 1) // lock request
	r.run(200 * time.Millisecond)
	if !m.Locked() {
		t.Fatal("lock request ignored")
	}
	if !r.motorHigh("LOCK_MOT") {
		t.Error("lock motor not driving during pulse")
	}
	r.run(time.Second)
	if r.motorHigh("LOCK_MOT") {
		t.Error("lock motor still driving after 500 ms pulse")
	}
	// Status frame reports locked.
	v, err := mon.Signal(r.env.DB, "CL_STAT", 0, 1)
	if err != nil || v != 1 {
		t.Errorf("CL_STAT = %v, %v", v, err)
	}
	// Unlock.
	r.putCAN("CL_CMD", 0, 2, 2)
	r.run(200 * time.Millisecond)
	if m.Locked() {
		t.Fatal("unlock request ignored")
	}
	if !r.motorHigh("UNLOCK_MOT") {
		t.Error("unlock motor not driving")
	}
	r.run(time.Second)
	v, _ = mon.Signal(r.env.DB, "CL_STAT", 0, 1)
	if v != 0 {
		t.Errorf("CL_STAT after unlock = %v", v)
	}
}

func TestCentralLockingAutoLock(t *testing.T) {
	r, m, _, tick := clRig(t)
	defer tick.Stop()
	r.putCAN("VEH_DYN", 0, 8, 5) // 5 km/h: below threshold
	r.run(time.Second)
	if m.Locked() {
		t.Fatal("locked below 8 km/h")
	}
	r.putCAN("VEH_DYN", 0, 8, 9) // above threshold
	r.run(time.Second)
	if !m.Locked() {
		t.Fatal("auto-lock did not engage at 9 km/h")
	}
	// Manual unlock re-arms; same speed must not immediately re-lock
	// until speed drops? R3 says once per driving cycle re-armed by
	// manual unlock — we accept an immediate re-lock only after re-arming.
	r.putCAN("CL_CMD", 0, 2, 2)
	r.run(100 * time.Millisecond)
	if m.Locked() {
		t.Fatal("manual unlock failed")
	}
}

func TestCentralLockingCrash(t *testing.T) {
	r, m, _, tick := clRig(t)
	defer tick.Stop()
	r.putCAN("CL_CMD", 0, 2, 1)
	r.run(time.Second)
	if !m.Locked() {
		t.Fatal("precondition lock failed")
	}
	r.putR("CRASH_SW", 0) // crash!
	r.run(100 * time.Millisecond)
	if m.Locked() {
		t.Error("crash did not unlock")
	}
	if !r.motorHigh("UNLOCK_MOT") {
		t.Error("crash unlock pulse missing")
	}
	// Lock requests are inhibited during crash.
	r.putCAN("CL_CMD", 0, 2, 0)
	r.run(100 * time.Millisecond)
	r.putCAN("CL_CMD", 0, 2, 1)
	r.run(200 * time.Millisecond)
	if m.Locked() {
		t.Error("lock engaged while crash active")
	}
}

func TestCentralLockingFaults(t *testing.T) {
	t.Run("no_autolock", func(t *testing.T) {
		r, m, _, tick := clRig(t)
		defer tick.Stop()
		if err := m.InjectFault("no_autolock"); err != nil {
			t.Fatal(err)
		}
		r.putCAN("VEH_DYN", 0, 8, 20)
		r.run(time.Second)
		if m.Locked() {
			t.Error("faulty unit auto-locked anyway")
		}
	})
	t.Run("autolock_3kmh", func(t *testing.T) {
		r, m, _, tick := clRig(t)
		defer tick.Stop()
		if err := m.InjectFault("autolock_3kmh"); err != nil {
			t.Fatal(err)
		}
		r.putCAN("VEH_DYN", 0, 8, 5) // healthy: below 8, no lock
		r.run(time.Second)
		if !m.Locked() {
			t.Error("fault not visible at 5 km/h")
		}
	})
	t.Run("short_pulse", func(t *testing.T) {
		r, m, _, tick := clRig(t)
		defer tick.Stop()
		if err := m.InjectFault("short_pulse"); err != nil {
			t.Fatal(err)
		}
		r.putCAN("CL_CMD", 0, 2, 1)
		r.run(100 * time.Millisecond)
		if !r.motorHigh("LOCK_MOT") {
			t.Fatal("pulse did not start")
		}
		r.run(200 * time.Millisecond) // at 300 ms a healthy 500 ms pulse still drives
		if r.motorHigh("LOCK_MOT") {
			t.Error("short pulse not observable at 300 ms (motor still driving)")
		}
	})
	t.Run("no_status", func(t *testing.T) {
		r, m, mon, tick := clRig(t)
		defer tick.Stop()
		if err := m.InjectFault("no_status"); err != nil {
			t.Fatal(err)
		}
		r.putCAN("CL_CMD", 0, 2, 1)
		r.run(time.Second)
		v, err := mon.Signal(r.env.DB, "CL_STAT", 0, 1)
		if err == nil && v == 1 {
			t.Error("status updated despite no_status fault")
		}
	})
	t.Run("crash_ignored", func(t *testing.T) {
		r, m, _, tick := clRig(t)
		defer tick.Stop()
		if err := m.InjectFault("crash_ignored"); err != nil {
			t.Fatal(err)
		}
		r.putCAN("CL_CMD", 0, 2, 1)
		r.run(time.Second)
		r.putR("CRASH_SW", 0)
		r.run(time.Second)
		if !m.Locked() {
			t.Error("crash unlocked despite crash_ignored fault")
		}
	})
}

// ---------------------------------------------------------- window lifter --

func TestWindowLifterBasics(t *testing.T) {
	r := newRig(t)
	m := NewWindowLifter()
	tick := r.attach(m)
	defer tick.Stop()
	r.putR("SW_UP", math.Inf(1))
	r.putR("SW_DOWN", math.Inf(1))
	r.run(time.Second)
	if r.motorHigh("MOT_UP") || r.motorHigh("MOT_DOWN") {
		t.Fatal("motor running without switch")
	}
	r.putR("SW_UP", 0) // press up
	r.run(time.Second)
	if !r.motorHigh("MOT_UP") {
		t.Error("up motor not driving (R1)")
	}
	if r.motorHigh("MOT_DOWN") {
		t.Error("down motor driving during up")
	}
	r.putR("SW_UP", math.Inf(1)) // release
	r.run(100 * time.Millisecond)
	if r.motorHigh("MOT_UP") {
		t.Error("motor still driving after release")
	}
}

func TestWindowLifterTravelLimit(t *testing.T) {
	r := newRig(t)
	m := NewWindowLifter()
	tick := r.attach(m)
	defer tick.Stop()
	r.putR("SW_DOWN", math.Inf(1))
	r.putR("SW_UP", 0)
	r.run(3 * time.Second)
	if !r.motorHigh("MOT_UP") {
		t.Fatal("motor stopped before the 4 s travel limit")
	}
	r.run(2 * time.Second) // 5 s held: beyond limit
	if r.motorHigh("MOT_UP") {
		t.Error("motor still driving past the travel limit (R3)")
	}
}

func TestWindowLifterInterlock(t *testing.T) {
	r := newRig(t)
	m := NewWindowLifter()
	tick := r.attach(m)
	defer tick.Stop()
	r.putR("SW_UP", 0)
	r.putR("SW_DOWN", 0)
	r.run(time.Second)
	if r.motorHigh("MOT_UP") || r.motorHigh("MOT_DOWN") {
		t.Error("motors driving with both switches pressed (R4)")
	}
}

func TestWindowLifterThermal(t *testing.T) {
	r := newRig(t)
	m := NewWindowLifter()
	tick := r.attach(m)
	defer tick.Stop()
	r.putR("SW_DOWN", math.Inf(1))
	// Accumulate 30 s of motor time in bursts below the travel limit.
	for i := 0; i < 9; i++ {
		r.putR("SW_UP", 0)
		r.run(3500 * time.Millisecond)
		r.putR("SW_UP", math.Inf(1))
		r.run(200 * time.Millisecond)
	}
	// Budget (30 s) exhausted: pressing up must not drive.
	r.putR("SW_UP", 0)
	r.run(500 * time.Millisecond)
	if r.motorHigh("MOT_UP") {
		t.Error("motor driving with exhausted thermal budget (R5)")
	}
	// After the cooldown it recovers.
	r.putR("SW_UP", math.Inf(1))
	r.run(ThermalCooldown + time.Second)
	r.putR("SW_UP", 0)
	r.run(time.Second)
	if !r.motorHigh("MOT_UP") {
		t.Error("motor inhibited after cooldown")
	}
}

func TestWindowLifterFaults(t *testing.T) {
	t.Run("no_interlock", func(t *testing.T) {
		r := newRig(t)
		m := NewWindowLifter()
		tick := r.attach(m)
		defer tick.Stop()
		if err := m.InjectFault("no_interlock"); err != nil {
			t.Fatal(err)
		}
		r.putR("SW_UP", 0)
		r.putR("SW_DOWN", 0)
		r.run(time.Second)
		if !r.motorHigh("MOT_UP") || !r.motorHigh("MOT_DOWN") {
			t.Error("no_interlock fault not observable")
		}
	})
	t.Run("stuck_up", func(t *testing.T) {
		r := newRig(t)
		m := NewWindowLifter()
		tick := r.attach(m)
		defer tick.Stop()
		if err := m.InjectFault("stuck_up"); err != nil {
			t.Fatal(err)
		}
		r.putR("SW_UP", math.Inf(1))
		r.putR("SW_DOWN", math.Inf(1))
		r.run(time.Second)
		if !r.motorHigh("MOT_UP") {
			t.Error("stuck_up fault not observable")
		}
	})
	t.Run("travel_8s", func(t *testing.T) {
		r := newRig(t)
		m := NewWindowLifter()
		tick := r.attach(m)
		defer tick.Stop()
		if err := m.InjectFault("travel_8s"); err != nil {
			t.Fatal(err)
		}
		r.putR("SW_DOWN", math.Inf(1))
		r.putR("SW_UP", 0)
		r.run(6 * time.Second) // healthy stops at 4 s
		if !r.motorHigh("MOT_UP") {
			t.Error("travel_8s fault not observable at 6 s")
		}
	})
}

func TestClearFaults(t *testing.T) {
	m := NewInteriorLight()
	if err := m.InjectFault("stuck_off"); err != nil {
		t.Fatal(err)
	}
	if !m.Fault("stuck_off") {
		t.Fatal("fault not set")
	}
	m.ClearFaults()
	if m.Fault("stuck_off") {
		t.Error("ClearFaults did not clear")
	}
}

// Silence the unused-helper warning for inf (kept for readability).
var _ = inf
