package ecu

import (
	"time"

	"repro/internal/analog"
)

// InteriorLight models the paper's Section 3 example: "The behaviour of
// the signal INT_ILL (interior illumination) is described as a function
// of the signals IGN_ST (ignition status), DS_FL (door switch front
// left), DS_FR (door switch front right) and the bit NIGHT, coming from a
// light sensor. If the bit NIGHT is active, the interior illumination is
// lit for a maximum duration of 300 s, if one of the doors is open, what
// is indicated by an 'Open' status of the door switch."
//
// Requirements implemented:
//
//	R1  The lamp is off while NIGHT is inactive (day).
//	R2  At night the lamp is on while at least one door is open.
//	R3  The on-time per door-opening is limited to 300 s; the timer starts
//	    at the opening edge and a new opening restarts it.
//	R4  Closing all doors switches the lamp off immediately.
//
// Electrical interface (matching the paper's figure): door switches
// DS_FL/FR/RL/RR are low-active inputs with internal pull-ups; the lamp
// output is a high-side driver on pin INT_ILL_F with the return line
// INT_ILL_R tied to ground.
type InteriorLight struct {
	Base

	doors   [4]*DigitalInput
	lamp    *HighSideOutput
	ignIn   *CANIn
	nightIn *CANIn

	prevOpen  bool
	openSince time.Duration
	lampOn    bool
}

// InteriorLightPins is the connector pinout, matching the paper's
// connection matrix columns.
var InteriorLightPins = []string{"INT_ILL_F", "INT_ILL_R", "DS_FL", "DS_FR", "DS_RL", "DS_RR"}

// Timeout is the R3 illumination limit.
const Timeout = 300 * time.Second

// NewInteriorLight creates the model.
func NewInteriorLight() *InteriorLight {
	m := &InteriorLight{}
	m.ModelName = "interior_light"
	m.registerFaults(
		FaultInfo{Name: "timeout_200s", Requirement: "R3",
			Doc:     "lamp times out after 200 s instead of 300 s",
			Signals: []string{"INT_ILL"}},
		FaultInfo{Name: "no_timeout", Requirement: "R3",
			Doc:     "lamp never times out",
			Signals: []string{"INT_ILL"}},
		FaultInfo{Name: "ignore_night", Requirement: "R1",
			Doc:     "lamp also lights at day",
			Signals: []string{"NIGHT", "INT_ILL"}},
		FaultInfo{Name: "only_fl", Requirement: "R2",
			Doc:     "only the front-left door switch is evaluated",
			Signals: []string{"DS_FR", "DS_RL", "DS_RR"}},
		FaultInfo{Name: "stuck_off", Requirement: "R2",
			Doc:     "lamp never lights",
			Signals: []string{"INT_ILL"}},
		FaultInfo{Name: "no_close_off", Requirement: "R4",
			Doc:     "lamp stays on after closing until timeout",
			Signals: []string{"INT_ILL"}},
		FaultInfo{Name: "inverted_output", Requirement: "R1",
			Doc:     "output driver polarity inverted",
			Signals: []string{"INT_ILL"}},
	)
	return m
}

// PinNames implements ECU.
func (m *InteriorLight) PinNames() []string {
	out := make([]string, len(InteriorLightPins))
	copy(out, InteriorLightPins)
	return out
}

// Attach implements ECU.
func (m *InteriorLight) Attach(env *Env) error {
	if err := m.attachBase(env); err != nil {
		return err
	}
	for i, pin := range []string{"DS_FL", "DS_FR", "DS_RL", "DS_RR"} {
		m.doors[i] = m.AddInputPullUp(pin, 1000)
	}
	m.lamp = m.AddOutputHighSide("INT_ILL_F", 0.1, 1000)
	m.AddReturnPin("INT_ILL_R")
	// CAN packing follows the paper example's signal definition sheet:
	// IGN_ST = BCM_STAT bits 0..3, NIGHT = BCM_STAT bit 4.
	m.ignIn = m.CANInput("BCM_STAT", 0, 4, 1) // default: ignition off (status 0001B)
	m.nightIn = m.CANInput("BCM_STAT", 4, 1, 0)
	m.Reset()
	return nil
}

// Reset implements ECU.
func (m *InteriorLight) Reset() {
	m.prevOpen = false
	m.openSince = 0
	m.lampOn = false
	if m.lamp != nil {
		m.lamp.Set(false)
	}
}

// DoorOpen reports whether door i (0=FL, 1=FR, 2=RL, 3=RR) reads open.
func (m *InteriorLight) DoorOpen(sol *analog.Solution, i int) bool {
	return m.doors[i].Active(sol)
}

// LampOn reports the commanded lamp state (for white-box tests).
func (m *InteriorLight) LampOn() bool { return m.lampOn }

// QuiescentUntil implements Quiescer. With stable inputs the only
// self-scheduled transition is the R3 timeout switching the lamp off.
func (m *InteriorLight) QuiescentUntil(now time.Duration) (time.Duration, bool) {
	if !m.lampOn {
		// Off stays off: every term of the on-condition is input-driven
		// and withinTime only ever shrinks.
		return Forever, true
	}
	if m.Fault("no_timeout") {
		return Forever, true
	}
	timeout := Timeout
	if m.Fault("timeout_200s") {
		timeout = 200 * time.Second
	}
	return m.openSince + timeout, true
}

// Tick implements ECU.
func (m *InteriorLight) Tick(now time.Duration, sol *analog.Solution) {
	anyOpen := false
	for i := range m.doors {
		if m.Fault("only_fl") && i != 0 {
			continue
		}
		if m.doors[i].Active(sol) {
			anyOpen = true
		}
	}
	if anyOpen && !m.prevOpen {
		m.openSince = now // R3: timer starts at the opening edge
	}
	m.prevOpen = anyOpen

	night := m.nightIn.Value() == 1
	if m.Fault("ignore_night") {
		night = true
	}

	timeout := Timeout
	if m.Fault("timeout_200s") {
		timeout = 200 * time.Second
	}
	withinTime := now-m.openSince < timeout
	if m.Fault("no_timeout") {
		withinTime = true
	}

	on := night && anyOpen && withinTime
	if m.Fault("no_close_off") {
		on = night && withinTime && (anyOpen || m.lampOn)
	}
	if m.Fault("stuck_off") {
		on = false
	}
	m.lampOn = on
	if m.Fault("inverted_output") {
		on = !on
	}
	m.lamp.Set(on)
}

var _ ECU = (*InteriorLight)(nil)
var _ Quiescer = (*InteriorLight)(nil)
