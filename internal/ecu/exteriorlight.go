package ecu

import (
	"math"
	"time"

	"repro/internal/analog"
)

// ExteriorLight models a fourth body ECU used by the extended test
// suites: an exterior light controller. It deliberately exercises the
// measurement methods the interior-light example does not: the daytime
// running light is a PWM output (checked with get_f) and the rear fog
// lamp is driven through a relay contact (checked with get_r).
//
// Requirements implemented:
//
//	R1  LIGHT_SW = 2 (low beam) with ignition on drives LB_OUT.
//	R2  Daytime running light: with ignition on, at day, and the low
//	    beam off, DRL_OUT emits 25 Hz PWM (the simulated dimming
//	    modulation); at night or with low beam on, DRL is off.
//	R3  Follow-me-home: when the ignition turns off at night, the low
//	    beam stays on for 30 s.
//	R4  The rear fog relay contact (REAR_FOG to ground) closes while
//	    FOG_SW is set and the low beam is on.
type ExteriorLight struct {
	Base

	lb      *HighSideOutput
	drl     *HighSideOutput
	fogRel  *analog.Resistor
	swIn    *CANIn
	ignIn   *CANIn
	nightIn *CANIn
	fogIn   *CANIn

	prevIgn   bool
	fmhUntil  time.Duration
	modulated bool // DRL PWM ran on the last tick
}

// ExteriorLightPins is the connector pinout.
var ExteriorLightPins = []string{"LB_OUT", "DRL_OUT", "REAR_FOG"}

// DRL PWM parameters: 25 Hz, 50 % duty, realised on the 10 ms task grid.
const (
	DRLPeriod = 40 * time.Millisecond
	// FMHTime is the R3 follow-me-home duration.
	FMHTime = 30 * time.Second
	// FogContactOhms is the closed relay contact resistance.
	FogContactOhms = 0.5
)

// NewExteriorLight creates the model.
func NewExteriorLight() *ExteriorLight {
	m := &ExteriorLight{}
	m.ModelName = "exterior_light"
	m.registerFaults(
		FaultInfo{Name: "no_fmh", Requirement: "R3",
			Doc:     "no follow-me-home",
			Signals: []string{"IGN", "LB_OUT"}},
		FaultInfo{Name: "fmh_10s", Requirement: "R3",
			Doc:     "follow-me-home times out after 10 s instead of 30 s",
			Signals: []string{"LB_OUT"}},
		FaultInfo{Name: "drl_slow_pwm", Requirement: "R2",
			Doc:     "10 Hz DRL modulation instead of 25 Hz",
			Signals: []string{"DRL_OUT"}},
		FaultInfo{Name: "drl_at_night", Requirement: "R2",
			Doc:     "DRL also runs at night",
			Signals: []string{"NIGHT", "DRL_OUT"}},
		FaultInfo{Name: "fog_stuck_open", Requirement: "R4",
			Doc:     "rear fog relay never closes",
			Signals: []string{"FOG_SW", "REAR_FOG"}},
	)
	return m
}

// PinNames implements ECU.
func (m *ExteriorLight) PinNames() []string {
	out := make([]string, len(ExteriorLightPins))
	copy(out, ExteriorLightPins)
	return out
}

// Attach implements ECU.
func (m *ExteriorLight) Attach(env *Env) error {
	if err := m.attachBase(env); err != nil {
		return err
	}
	m.lb = m.AddOutputHighSide("LB_OUT", 0.1, 1000)
	m.drl = m.AddOutputHighSide("DRL_OUT", 0.1, 1000)
	m.fogRel = env.Net.AddResistor(m.ModelName+".fog_contact",
		env.Net.Node("REAR_FOG"), analog.Ground, math.Inf(1))
	// CAN packing: EXT_CMD bits 0-1 LIGHT_SW, 2 IGN, 3 NIGHT, 4 FOG_SW.
	m.swIn = m.CANInput("EXT_CMD", 0, 2, 0)
	m.ignIn = m.CANInput("EXT_CMD", 2, 1, 0)
	m.nightIn = m.CANInput("EXT_CMD", 3, 1, 0)
	m.fogIn = m.CANInput("EXT_CMD", 4, 1, 0)
	m.Reset()
	return nil
}

// Reset implements ECU.
func (m *ExteriorLight) Reset() {
	m.prevIgn = false
	m.fmhUntil = 0
	m.modulated = false
	if m.lb != nil {
		m.lb.Set(false)
		m.drl.Set(false)
		m.fogRel.SetOhms(math.Inf(1))
	}
}

// QuiescentUntil implements Quiescer. A running DRL modulation changes
// the output every half period, so nothing may be skipped then; a
// follow-me-home window ends at a predictable time; everything else
// needs a CAN input change.
func (m *ExteriorLight) QuiescentUntil(now time.Duration) (time.Duration, bool) {
	if m.modulated {
		return 0, false
	}
	if now < m.fmhUntil {
		return m.fmhUntil, true
	}
	return Forever, true
}

// Tick implements ECU.
func (m *ExteriorLight) Tick(now time.Duration, sol *analog.Solution) {
	ign := m.ignIn.Value() == 1
	night := m.nightIn.Value() == 1
	lowBeamSelected := m.swIn.Value() == 2

	// R3: follow-me-home arms on the ignition falling edge at night.
	if m.prevIgn && !ign && night && !m.Fault("no_fmh") {
		d := FMHTime
		if m.Fault("fmh_10s") {
			d = 10 * time.Second
		}
		m.fmhUntil = now + d
	}
	m.prevIgn = ign

	lbOn := (lowBeamSelected && ign) || now < m.fmhUntil
	m.lb.Set(lbOn)

	// R2: DRL PWM.
	drlActive := ign && !night && !lbOn
	if m.Fault("drl_at_night") {
		drlActive = ign && !lbOn
	}
	m.modulated = drlActive
	if drlActive {
		period := DRLPeriod
		if m.Fault("drl_slow_pwm") {
			period = 100 * time.Millisecond
		}
		phase := now % period
		m.drl.Set(phase < period/2)
	} else {
		m.drl.Set(false)
	}

	// R4: rear fog relay.
	fogOn := m.fogIn.Value() == 1 && lbOn && !m.Fault("fog_stuck_open")
	if fogOn {
		m.fogRel.SetOhms(FogContactOhms)
	} else {
		m.fogRel.SetOhms(math.Inf(1))
	}
}

var _ ECU = (*ExteriorLight)(nil)
var _ Quiescer = (*ExteriorLight)(nil)
