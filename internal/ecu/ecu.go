// Package ecu provides behavioural models of the devices under test. The
// paper's method was "successfully applied to two ECUs of the next
// S-class"; those ECUs are proprietary, so this package substitutes
// executable requirement models: an interior-illumination controller
// (the paper's Section 3 example, including the 300 s timeout), a central
// locking unit and a window lifter. Each model senses its pins through
// the analog network, talks CAN through the canbus substrate, and keeps
// its timing against the discrete-event clock — so the test stand drives
// it exactly as it would drive real hardware.
//
// Every model supports fault injection ("mutants"): named deviations from
// the requirements used to demonstrate that the component tests actually
// detect requirement violations (EXPERIMENTS.md, experiment C2).
package ecu

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/analog"
	"repro/internal/canbus"
	"repro/internal/event"
)

// Env is everything a DUT model needs from the simulated test stand: the
// electrical network, supply rail, CAN bus and the simulation clock.
type Env struct {
	Net        *analog.Network
	Sched      *event.Scheduler
	Bus        *canbus.Bus
	DB         *canbus.DB
	UbattVolts float64
	UbattNode  analog.NodeID
}

// ECU is a device-under-test model.
type ECU interface {
	// Name identifies the model.
	Name() string
	// PinNames lists the DUT connector pins the model exposes.
	PinNames() []string
	// Attach wires the model into the environment. It must be called
	// exactly once, before Reset/Tick.
	Attach(env *Env) error
	// Reset puts the model into its power-on state.
	Reset()
	// Tick runs one logic cycle: the model senses its inputs from the
	// solved network state and updates outputs/timers. The stand calls it
	// at the model's task rate.
	Tick(now time.Duration, sol *analog.Solution)
	// InjectFault activates a named requirement mutation.
	InjectFault(name string) error
	// FaultNames lists the supported fault injections, sorted.
	FaultNames() []string
}

// TaskPeriod is the logic task rate of all models: 10 ms, a typical
// body-controller cycle time.
const TaskPeriod = 10 * time.Millisecond

// FaultInfo describes one supported fault injection: which requirement
// the deviation violates and which workbook signals its behaviour
// involves. The mutation subsystem (comptest/mutation) uses the signal
// list to cross-reference surviving mutants with lint coverage findings.
type FaultInfo struct {
	// Name is the injection key passed to InjectFault.
	Name string
	// Requirement is the requirement the fault violates (e.g. "R3"),
	// matching the requirement list in the model's doc comment.
	Requirement string
	// Doc is a one-line description of the deviation.
	Doc string
	// Signals names the workbook signals whose handling the fault
	// alters — the signals a test suite must exercise to kill it.
	Signals []string
}

// FaultIntrospector is implemented by models that describe their faults
// beyond the bare names (all built-in models do, via Base).
type FaultIntrospector interface {
	FaultInfos() []FaultInfo
}

// Faults returns the fault descriptions of a model: the full FaultInfo
// list when the model supports introspection, otherwise entries
// synthesised from the bare FaultNames.
func Faults(e ECU) []FaultInfo {
	if fi, ok := e.(FaultIntrospector); ok {
		return fi.FaultInfos()
	}
	names := e.FaultNames()
	out := make([]FaultInfo, len(names))
	for i, n := range names {
		out[i] = FaultInfo{Name: n}
	}
	return out
}

// ------------------------------------------------------------------ base --

// Base carries the plumbing shared by all models: environment access,
// the CAN node/monitor/transmit group and the fault registry. Concrete
// models embed it.
type Base struct {
	ModelName string
	env       *Env
	mon       *canbus.Monitor
	tx        *canbus.TxGroup
	outs      []*CANOutput

	// The active-fault set is a bit mask so Tick-path queries are one
	// atomic load: campaigns may inject or clear faults from a
	// controller goroutine while the simulation goroutine reads them
	// every task cycle.
	faultMask atomic.Uint64
	faultBits map[string]uint64
	known     []FaultInfo // sorted by name
}

// Name implements ECU.
func (b *Base) Name() string { return b.ModelName }

// Env returns the attached environment; nil before Attach.
func (b *Base) Env() *Env { return b.env }

// attachBase wires the CAN side and stores the environment.
func (b *Base) attachBase(env *Env) error {
	if b.env != nil {
		return fmt.Errorf("ecu %s: Attach called twice", b.ModelName)
	}
	if env == nil || env.Net == nil || env.Sched == nil {
		return fmt.Errorf("ecu %s: incomplete environment", b.ModelName)
	}
	b.env = env
	if env.Bus != nil {
		b.mon = canbus.NewMonitor()
		node := env.Bus.Attach(b.ModelName, b.mon.Rx)
		// ECU status frames go out every 100 ms, a typical body rate.
		b.tx = canbus.NewTxGroup(node, env.DB, 100*time.Millisecond, env.Sched)
	}
	return nil
}

// registerFaults declares the supported fault injections. It must be
// called once, from the model constructor, before any concurrent use.
// At most 64 faults per model (one bit each).
func (b *Base) registerFaults(infos ...FaultInfo) {
	b.known = append([]FaultInfo(nil), infos...)
	sort.Slice(b.known, func(i, j int) bool { return b.known[i].Name < b.known[j].Name })
	if len(b.known) > 64 {
		panic(fmt.Sprintf("ecu %s: more than 64 faults", b.ModelName))
	}
	b.faultBits = make(map[string]uint64, len(b.known))
	for i, k := range b.known {
		b.faultBits[k.Name] = 1 << uint(i)
	}
}

// InjectFault implements ECU. It is safe to call while the model is
// being ticked by another goroutine.
func (b *Base) InjectFault(name string) error {
	bit, ok := b.faultBits[name]
	if !ok {
		return fmt.Errorf("ecu %s: unknown fault %q (have %v)", b.ModelName, name, b.FaultNames())
	}
	for {
		old := b.faultMask.Load()
		if b.faultMask.CompareAndSwap(old, old|bit) {
			return nil
		}
	}
}

// FaultNames implements ECU.
func (b *Base) FaultNames() []string {
	out := make([]string, len(b.known))
	for i, k := range b.known {
		out[i] = k.Name
	}
	return out
}

// FaultInfos implements FaultIntrospector.
func (b *Base) FaultInfos() []FaultInfo {
	out := make([]FaultInfo, len(b.known))
	copy(out, b.known)
	return out
}

// Fault reports whether the named fault is active.
func (b *Base) Fault(name string) bool {
	return b.faultMask.Load()&b.faultBits[name] != 0
}

// ClearFaults deactivates all injected faults.
func (b *Base) ClearFaults() {
	b.faultMask.Store(0)
}

// ResetComms returns the model's CAN side to its power-on state: the
// receive monitor forgets latched frames and the transmit group's
// payloads are dropped, so status signals are re-announced on the next
// Set. The stand calls this when a pooled stand is reused for a new run,
// so a recycled DUT is indistinguishable from a freshly attached one.
func (b *Base) ResetComms() {
	if b.mon != nil {
		b.mon.Clear()
	}
	if b.tx != nil {
		b.tx.Clear()
	}
	for _, o := range b.outs {
		o.sent = false
	}
}

// SuspendPeriodic parks the model's periodic CAN keep-alive; part of the
// stand's idle fast-forward protocol.
func (b *Base) SuspendPeriodic() {
	if b.tx != nil {
		b.tx.Suspend()
	}
}

// ResumePeriodic re-arms the keep-alive on its original phase grid.
func (b *Base) ResumePeriodic() {
	if b.tx != nil {
		b.tx.Resume()
	}
}

// ----------------------------------------------------------- pin helpers --

// DigitalInput is a low-active switch input: an internal pull-up resistor
// to Ubatt keeps the pin high; an external resistance to ground (the
// paper's put_r) pulls it low. Active means "pulled low".
type DigitalInput struct {
	node      analog.NodeID
	env       *Env
	threshold float64 // fraction of Ubatt below which the input is active
}

// AddInputPullUp creates a digital input on the named pin with the given
// internal pull-up.
func (b *Base) AddInputPullUp(pin string, pullOhms float64) *DigitalInput {
	env := b.env
	node := env.Net.Node(pin)
	env.Net.AddResistor(b.ModelName+"."+pin+".pullup", env.UbattNode, node, pullOhms)
	return &DigitalInput{node: node, env: env, threshold: 0.5}
}

// Active reports whether the input is pulled low in the given solution.
func (d *DigitalInput) Active(sol *analog.Solution) bool {
	return sol.Voltage(d.node) < d.threshold*d.env.UbattVolts
}

// HighSideOutput drives a pin to Ubatt through a driver resistance when
// on; when off the pin is released and an internal pull-down defines 0 V.
type HighSideOutput struct {
	src *analog.VSource
	on  bool
}

// AddOutputHighSide creates a high-side driver on the named pin.
// driveOhms is the on-state series resistance, offPullOhms the off-state
// pull-down.
func (b *Base) AddOutputHighSide(pin string, driveOhms, offPullOhms float64) *HighSideOutput {
	env := b.env
	node := env.Net.Node(pin)
	drv := env.Net.Node(b.ModelName + "." + pin + ".drv")
	src := env.Net.AddVSource(b.ModelName+"."+pin+".src", drv, analog.Ground, env.UbattVolts)
	src.SetEnabled(false)
	env.Net.AddResistor(b.ModelName+"."+pin+".rdrv", drv, node, driveOhms)
	env.Net.AddResistor(b.ModelName+"."+pin+".pulldown", node, analog.Ground, offPullOhms)
	return &HighSideOutput{src: src}
}

// Set switches the driver.
func (o *HighSideOutput) Set(on bool) {
	if o.on != on {
		o.on = on
		o.src.SetEnabled(on)
	}
}

// On reports the driver state.
func (o *HighSideOutput) On() bool { return o.on }

// AddReturnPin ties a return/ground pin (e.g. the paper's INT_ILL_R) to
// ground through a small harness resistance.
func (b *Base) AddReturnPin(pin string) {
	env := b.env
	env.Net.AddResistor(b.ModelName+"."+pin+".ret", env.Net.Node(pin), analog.Ground, 0.01)
}

// ------------------------------------------------------------ CAN helpers --

// CANIn reads one received CAN signal, latching the last value.
type CANIn struct {
	base    *Base
	message string
	start   int
	length  int
	def     uint64
	msgDef  *canbus.MessageDef // resolved once at declaration
}

// CANInput declares a received CAN signal with a default used until the
// first frame arrives.
func (b *Base) CANInput(message string, start, length int, def uint64) *CANIn {
	c := &CANIn{base: b, message: message, start: start, length: length, def: def}
	if b.env != nil && b.env.DB != nil {
		c.msgDef, _ = b.env.DB.Ensure(message)
	}
	return c
}

// Value returns the latched signal value. The message was resolved at
// declaration time, so the task-rate path is a map read plus bit
// extraction — no name normalisation.
func (c *CANIn) Value() uint64 {
	if c.base.mon == nil || c.msgDef == nil {
		return c.def
	}
	f, ok := c.base.mon.Last(c.msgDef.ID)
	if !ok {
		return c.def
	}
	v, err := f.ExtractSignal(c.start, c.length)
	if err != nil {
		return c.def
	}
	return v
}

// CANOutput sends one transmitted CAN signal through the model's periodic
// transmit group.
type CANOutput struct {
	base    *Base
	message string
	start   int
	length  int
	last    uint64
	sent    bool
}

// CANOut declares a transmitted CAN signal.
func (b *Base) CANOut(message string, start, length int) *CANOutput {
	if b.env != nil && b.env.DB != nil {
		_, _ = b.env.DB.Ensure(message)
	}
	c := &CANOutput{base: b, message: message, start: start, length: length}
	b.outs = append(b.outs, c)
	return c
}

// Set updates the signal; unchanged values are not retransmitted (the
// periodic group keeps them alive).
func (c *CANOutput) Set(v uint64) {
	if c.sent && c.last == v {
		return
	}
	c.last, c.sent = v, true
	if c.base.tx != nil {
		_ = c.base.tx.SetSignal(c.message, c.start, c.length, v)
	}
}

// ----------------------------------------------------------------- extras --

// openCircuit is the resistance of an open contact.
func openCircuit() float64 { return math.Inf(1) }

// Ticker drives a model at its task rate on the scheduler, solving the
// network before every tick. It is what the stand uses internally; tests
// can use it directly.
type Ticker struct {
	periodic *event.Periodic
	err      error
}

// StartTicker begins periodic Tick calls for the model.
func StartTicker(e ECU, env *Env) *Ticker {
	t := &Ticker{}
	t.periodic = env.Sched.Periodic(TaskPeriod, func() {
		sol, err := env.Net.Solve()
		if err != nil {
			t.err = err
			return
		}
		e.Tick(env.Sched.Now(), sol)
	})
	return t
}

// Err returns the first solve error seen, if any.
func (t *Ticker) Err() error { return t.err }

// Stop ends the periodic ticking.
func (t *Ticker) Stop() { t.periodic.Stop() }

// Suspend parks the ticker during an idle fast-forward window.
func (t *Ticker) Suspend() { t.periodic.Suspend() }

// Resume re-arms the ticker on its original task grid.
func (t *Ticker) Resume() { t.periodic.Resume() }

// --------------------------------------------------------- idle skipping --

// Forever is the QuiescentUntil sentinel for "no self-scheduled change".
const Forever = time.Duration(math.MaxInt64)

// Quiescer is implemented by models that can bound their self-scheduled
// behaviour. The stand uses it to fast-forward idle simulated time: when
// a model promises quiescence, every task tick inside the window is a
// provable no-op (unchanged outputs, equivalent internal evolution), so
// the scheduler may jump over the window instead of grinding through it.
type Quiescer interface {
	// QuiescentUntil returns the earliest future simulated time at
	// which the model's Tick may change its outputs or alter its
	// observable evolution, assuming all inputs (pin levels, received
	// CAN payloads) stay unchanged. Forever promises indefinite
	// stability. ok=false means the model cannot promise anything
	// (e.g. a modulated output is running) and no time may be skipped.
	QuiescentUntil(now time.Duration) (wake time.Duration, ok bool)
}
