package ecu

import (
	"time"

	"repro/internal/analog"
)

// WindowLifter models a third body ECU used by the extended examples: a
// door window lifter with a travel limit and a switch interlock.
//
// Requirements implemented:
//
//	R1  While the UP switch (low-active pin SW_UP) is pressed alone, the
//	    up motor output MOT_UP drives.
//	R2  While the DOWN switch is pressed alone, MOT_DOWN drives.
//	R3  Travel limit: continuous motion in one direction stops after 4 s
//	    (end stop reached); releasing the switch re-arms the limit.
//	R4  Interlock: if both switches are pressed, both motors stop.
//	R5  Thermal protection: after 30 s of accumulated motor-on time the
//	    motors are inhibited for 60 s.
type WindowLifter struct {
	Base

	swUp    *DigitalInput
	swDown  *DigitalInput
	motUp   *HighSideOutput
	motDown *HighSideOutput

	moveStart  time.Duration
	moving     int // 0 none, +1 up, -1 down
	motorOnAcc time.Duration
	inhibitTil time.Duration
	lastTick   time.Duration // -1 until the first tick after a reset
}

// WindowLifterPins is the connector pinout.
var WindowLifterPins = []string{"SW_UP", "SW_DOWN", "MOT_UP", "MOT_DOWN"}

// TravelLimit is the R3 continuous-motion limit.
const TravelLimit = 4 * time.Second

// ThermalBudget and ThermalCooldown define R5.
const (
	ThermalBudget   = 30 * time.Second
	ThermalCooldown = 60 * time.Second
)

// NewWindowLifter creates the model.
func NewWindowLifter() *WindowLifter {
	m := &WindowLifter{}
	m.ModelName = "window_lifter"
	m.registerFaults(
		FaultInfo{Name: "no_interlock", Requirement: "R4",
			Doc:     "both motors drive when both switches are pressed",
			Signals: []string{"SW_UP", "SW_DOWN", "MOT_UP", "MOT_DOWN"}},
		FaultInfo{Name: "travel_8s", Requirement: "R3",
			Doc:     "end stop detected after 8 s instead of 4 s",
			Signals: []string{"MOT_UP", "MOT_DOWN"}},
		FaultInfo{Name: "no_thermal", Requirement: "R5",
			Doc:     "no thermal protection",
			Signals: []string{"MOT_UP", "MOT_DOWN"}},
		FaultInfo{Name: "stuck_up", Requirement: "R1",
			Doc:     "MOT_UP permanently on",
			Signals: []string{"MOT_UP"}},
	)
	return m
}

// PinNames implements ECU.
func (m *WindowLifter) PinNames() []string {
	out := make([]string, len(WindowLifterPins))
	copy(out, WindowLifterPins)
	return out
}

// Attach implements ECU.
func (m *WindowLifter) Attach(env *Env) error {
	if err := m.attachBase(env); err != nil {
		return err
	}
	m.swUp = m.AddInputPullUp("SW_UP", 1000)
	m.swDown = m.AddInputPullUp("SW_DOWN", 1000)
	m.motUp = m.AddOutputHighSide("MOT_UP", 0.2, 1000)
	m.motDown = m.AddOutputHighSide("MOT_DOWN", 0.2, 1000)
	m.Reset()
	return nil
}

// Reset implements ECU.
func (m *WindowLifter) Reset() {
	m.moveStart = 0
	m.moving = 0
	m.motorOnAcc = 0
	m.inhibitTil = 0
	m.lastTick = -1
	if m.motUp != nil {
		m.motUp.Set(false)
		m.motDown.Set(false)
	}
}

// QuiescentUntil implements Quiescer. While a motor runs, the travel
// limit and the thermal budget are the self-scheduled transitions; with
// the motors off, every change needs a switch edge. The stuck_up fault
// keeps the thermal accounting churning against a forced-on output, so
// no promise is made there.
func (m *WindowLifter) QuiescentUntil(now time.Duration) (time.Duration, bool) {
	if m.Fault("stuck_up") {
		return 0, false
	}
	if !m.motUp.On() && !m.motDown.On() {
		// Off stays off: re-engaging needs a switch edge, and a thermal
		// inhibit always outlasts the travel-limit window it froze.
		return Forever, true
	}
	limit := TravelLimit
	if m.Fault("travel_8s") {
		limit = 8 * time.Second
	}
	wake := m.moveStart + limit
	if !m.Fault("no_thermal") {
		// Accumulation is linear in elapsed time while a motor runs, so
		// the budget crossing is exactly predictable.
		if thermal := now + (ThermalBudget - m.motorOnAcc); thermal < wake {
			wake = thermal
		}
	}
	return wake, true
}

// Tick implements ECU.
func (m *WindowLifter) Tick(now time.Duration, sol *analog.Solution) {
	dt := now - m.lastTick
	if m.lastTick < 0 {
		dt = TaskPeriod
	}
	m.lastTick = now

	up := m.swUp.Active(sol)
	down := m.swDown.Active(sol)

	want := 0
	switch {
	case up && down:
		if m.Fault("no_interlock") {
			want = +1 // R4 violated: up wins and both drive below
		}
	case up:
		want = +1
	case down:
		want = -1
	}

	if want != m.moving {
		m.moving = want
		m.moveStart = now
	}

	limit := TravelLimit
	if m.Fault("travel_8s") {
		limit = 8 * time.Second
	}
	runUp := want == +1 && now-m.moveStart < limit
	runDown := want == -1 && now-m.moveStart < limit

	// R5 thermal budget.
	if !m.Fault("no_thermal") {
		if now < m.inhibitTil {
			runUp, runDown = false, false
		} else if runUp || runDown {
			m.motorOnAcc += dt
			if m.motorOnAcc >= ThermalBudget {
				m.motorOnAcc = 0
				m.inhibitTil = now + ThermalCooldown
				runUp, runDown = false, false
			}
		}
	}

	if m.Fault("no_interlock") && up && down {
		runDown = runUp // both motors drive — the bug under test
	}
	if m.Fault("stuck_up") {
		runUp = true
	}
	m.motUp.Set(runUp)
	m.motDown.Set(runDown)
}

var _ ECU = (*WindowLifter)(nil)
var _ Quiescer = (*WindowLifter)(nil)
