package status

import (
	"math"
	"strings"
	"testing"

	"repro/internal/expr"
	"repro/internal/method"
	"repro/internal/sheet"
)

// paperStatusSheet is Table 2 of the paper, cell for cell (with the
// min/max columns laid out per the package's documented semantics).
const paperStatusSheet = `== StatusDefinition ==
status;method;attribut;var (x);nom;min;max;D 1;D 2;D 3
Off;put_can;data;;0001B;;;;;
Open;put_r;r;;0;0;0,5;2;;
Closed;put_r;r;;INF;5000;INF;5000;;
0;put_can;data;;0B;;;;;
1;put_can;data;;1B;;;;;
Lo;get_u;u;UBATT;0;0;0,3;;;
Ho;get_u;u;UBATT;1;0,7;1,1;;;
`

func paperTable(t *testing.T) *Table {
	t.Helper()
	wb, err := sheet.ReadWorkbookString(paperStatusSheet)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := ParseSheet(wb.Sheet("StatusDefinition"), method.Builtin())
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestParsePaperTable(t *testing.T) {
	tbl := paperTable(t)
	if tbl.Len() != 7 {
		t.Fatalf("Len = %d, want 7", tbl.Len())
	}
	want := []string{"Off", "Open", "Closed", "0", "1", "Lo", "Ho"}
	got := tbl.Names()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", got, want)
		}
	}
}

func TestHoGeneratesPaperExpressions(t *testing.T) {
	// The central transformation of the paper: status "Ho" becomes
	// u_min="(0.7*ubatt)" u_max="(1.1*ubatt)".
	tbl := paperTable(t)
	ho, ok := tbl.Lookup("Ho")
	if !ok {
		t.Fatal("Ho missing")
	}
	attrs, err := ho.MethodCallAttrs()
	if err != nil {
		t.Fatal(err)
	}
	if attrs["u_min"] != "(0.7*ubatt)" {
		t.Errorf("u_min = %q, want (0.7*ubatt)", attrs["u_min"])
	}
	if attrs["u_max"] != "(1.1*ubatt)" {
		t.Errorf("u_max = %q, want (1.1*ubatt)", attrs["u_max"])
	}
}

func TestLoLimits(t *testing.T) {
	tbl := paperTable(t)
	lo, _ := tbl.Lookup("lo") // case-insensitive
	lmin, lmax, err := lo.EvalLimits(expr.MapEnv{"ubatt": 12})
	if err != nil {
		t.Fatal(err)
	}
	if lmin != 0 || math.Abs(lmax-3.6) > 1e-12 {
		t.Errorf("Lo limits = [%v,%v], want [0,3.6]", lmin, lmax)
	}
}

func TestHoLimitsTrackUbatt(t *testing.T) {
	tbl := paperTable(t)
	ho, _ := tbl.Lookup("Ho")
	for _, ub := range []float64{9, 12, 14.2} {
		lmin, lmax, err := ho.EvalLimits(expr.MapEnv{"ubatt": ub})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(lmin-0.7*ub) > 1e-9 || math.Abs(lmax-1.1*ub) > 1e-9 {
			t.Errorf("Ho limits at ubatt=%v = [%v,%v], want [%v,%v]",
				ub, lmin, lmax, 0.7*ub, 1.1*ub)
		}
	}
}

func TestStimulusValues(t *testing.T) {
	tbl := paperTable(t)
	open, _ := tbl.Lookup("Open")
	v, err := open.StimulusValue()
	if err != nil || v != 0 {
		t.Errorf("Open stimulus = %v, %v; want 0", v, err)
	}
	closed, _ := tbl.Lookup("Closed")
	v, err = closed.StimulusValue()
	if err != nil || !math.IsInf(v, 1) {
		t.Errorf("Closed stimulus = %v, %v; want +Inf", v, err)
	}
}

func TestBitsValues(t *testing.T) {
	tbl := paperTable(t)
	off, _ := tbl.Lookup("Off")
	v, w, err := off.BitsValue()
	if err != nil || v != 1 || w != 4 {
		t.Errorf("Off bits = (%v,%v,%v), want (1,4)", v, w, err)
	}
	one, _ := tbl.Lookup("1")
	v, w, err = one.BitsValue()
	if err != nil || v != 1 || w != 1 {
		t.Errorf("1 bits = (%v,%v,%v)", v, w, err)
	}
}

func TestPutRAttrs(t *testing.T) {
	tbl := paperTable(t)
	closed, _ := tbl.Lookup("Closed")
	attrs, err := closed.MethodCallAttrs()
	if err != nil {
		t.Fatal(err)
	}
	if attrs["r"] != "INF" {
		t.Errorf("Closed r = %q, want INF", attrs["r"])
	}
	open, _ := tbl.Lookup("Open")
	attrs, err = open.MethodCallAttrs()
	if err != nil {
		t.Fatal(err)
	}
	if attrs["r"] != "0" {
		t.Errorf("Open r = %q, want 0", attrs["r"])
	}
}

func TestGermanDecimalNormalised(t *testing.T) {
	// "0,3" in the sheet must come out as "0.3" in generated attributes.
	tbl := paperTable(t)
	lo, _ := tbl.Lookup("Lo")
	attrs, err := lo.MethodCallAttrs()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(attrs["u_max"], ",") {
		t.Errorf("u_max %q still contains a decimal comma", attrs["u_max"])
	}
	if attrs["u_max"] != "(0.3*ubatt)" {
		t.Errorf("u_max = %q, want (0.3*ubatt)", attrs["u_max"])
	}
}

func TestToSheetRoundTrip(t *testing.T) {
	tbl := paperTable(t)
	out := tbl.ToSheet("StatusDefinition")
	tbl2, err := ParseSheet(out, method.Builtin())
	if err != nil {
		t.Fatalf("re-parse of ToSheet output: %v", err)
	}
	if tbl2.Len() != tbl.Len() {
		t.Fatalf("round-trip length %d != %d", tbl2.Len(), tbl.Len())
	}
	for _, name := range tbl.Names() {
		a, _ := tbl.Lookup(name)
		b, ok := tbl2.Lookup(name)
		if !ok {
			t.Fatalf("status %q lost in round trip", name)
		}
		if a.Method != b.Method || a.Nom != b.Nom || a.Min != b.Min || a.Max != b.Max || a.Var != b.Var {
			t.Errorf("status %q changed in round trip: %+v vs %+v", name, a, b)
		}
	}
}

func TestUsedMethods(t *testing.T) {
	tbl := paperTable(t)
	got := tbl.UsedMethods()
	want := []string{"get_u", "put_can", "put_r"}
	if len(got) != len(want) {
		t.Fatalf("UsedMethods = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("UsedMethods = %v, want %v", got, want)
		}
	}
}

func TestValidationErrors(t *testing.T) {
	reg := method.Builtin()
	cases := []struct {
		name string
		st   *Status
		want string
	}{
		{"unknown method", &Status{Name: "X", Method: "zorch"}, "unknown method"},
		{"empty name", &Status{Name: "", Method: "put_r"}, "without status name"},
		{"wrong attr", &Status{Name: "X", Method: "put_r", Attr: "u", Nom: "1"}, "does not match"},
		{"stimulus without nom", &Status{Name: "X", Method: "put_r"}, "requires a nom"},
		{"bad bits", &Status{Name: "X", Method: "put_can", Nom: "21B"}, "binary"},
		{"measure without limits", &Status{Name: "X", Method: "get_u", Nom: "1"}, "requires min and max"},
		{"garbage min", &Status{Name: "X", Method: "get_u", Min: "&&", Max: "1"}, "neither a number nor an expression"},
		{"get_can without nom", &Status{Name: "X", Method: "get_can"}, "expected payload"},
	}
	for _, c := range cases {
		tbl := NewTable(reg)
		err := tbl.Add(c.st)
		if err == nil {
			t.Errorf("%s: Add unexpectedly succeeded", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestDuplicateStatus(t *testing.T) {
	tbl := NewTable(method.Builtin())
	if err := tbl.Add(&Status{Name: "Ho", Method: "put_r", Nom: "1"}); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Add(&Status{Name: "ho", Method: "put_r", Nom: "2"}); err == nil {
		t.Error("duplicate (case-insensitive) status accepted")
	}
}

func TestDParameterFilling(t *testing.T) {
	// put_pwm needs two required attributes: f (from nom) and duty (from D1).
	tbl := NewTable(method.Builtin())
	st := &Status{Name: "Blink", Method: "put_pwm", Nom: "2", D: [3]string{"50", "", ""}}
	if err := tbl.Add(st); err != nil {
		t.Fatal(err)
	}
	attrs, err := st.MethodCallAttrs()
	if err != nil {
		t.Fatal(err)
	}
	if attrs["f"] != "2" || attrs["duty"] != "50" {
		t.Errorf("put_pwm attrs = %v", attrs)
	}
}

func TestDParameterMissingRequired(t *testing.T) {
	tbl := NewTable(method.Builtin())
	st := &Status{Name: "Blink", Method: "put_pwm", Nom: "2"}
	if err := tbl.Add(st); err != nil {
		t.Fatal(err)
	}
	if _, err := st.MethodCallAttrs(); err == nil {
		t.Error("missing required duty parameter not detected")
	}
}

func TestParseSheetErrors(t *testing.T) {
	reg := method.Builtin()
	if _, err := ParseSheet(nil, reg); err == nil {
		t.Error("ParseSheet(nil) succeeded")
	}
	s := sheet.NewSheet("S")
	s.AppendRow("foo", "bar")
	if _, err := ParseSheet(s, reg); err == nil || !strings.Contains(err.Error(), "column") {
		t.Errorf("headerless sheet error = %v", err)
	}
	s2 := sheet.NewSheet("S")
	s2.AppendRow("status", "method")
	if _, err := ParseSheet(s2, reg); err == nil || !strings.Contains(err.Error(), "no status rows") {
		t.Errorf("empty table error = %v", err)
	}
}

func TestEvalLimitsOnStimulus(t *testing.T) {
	tbl := paperTable(t)
	open, _ := tbl.Lookup("Open")
	if _, _, err := open.EvalLimits(expr.MapEnv{}); err == nil {
		t.Error("EvalLimits on stimulus status succeeded")
	}
}

func TestAbsoluteLimitsWithoutVar(t *testing.T) {
	tbl := NewTable(method.Builtin())
	st := &Status{Name: "Mid", Method: "get_u", Min: "4,5", Max: "5.5"}
	if err := tbl.Add(st); err != nil {
		t.Fatal(err)
	}
	lo, hi, err := st.EvalLimits(expr.MapEnv{})
	if err != nil {
		t.Fatal(err)
	}
	if lo != 4.5 || hi != 5.5 {
		t.Errorf("absolute limits = [%v,%v], want [4.5,5.5]", lo, hi)
	}
}

func TestStatusesOrder(t *testing.T) {
	tbl := paperTable(t)
	ss := tbl.Statuses()
	if len(ss) != 7 || ss[0].Name != "Off" || ss[6].Name != "Ho" {
		t.Errorf("Statuses() order wrong: %v", ss)
	}
}
