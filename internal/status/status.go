// Package status implements the status definition table of the paper's
// tool chain. Every expression used in a signal-definition or
// test-definition sheet ("Off", "Open", "Closed", "0", "1", "Lo", "Ho", …)
// is a status, and the status table defines what each one means:
//
//	status  method   attribut  var (x)  nom   min  max  D1 D2 D3
//	Off     put_can  data      —        0001B
//	Open    put_r    r         —        0     0    0.5  2
//	Closed  put_r    r         —        INF   5000 INF  5000
//	Lo      get_u    u         UBATT    0     0    0.3
//	Ho      get_u    u         UBATT    1     0.7  1.1
//
// Semantics, as reconstructed from the paper's prose and XML example:
//
//   - For a stimulus status (put_*), nom is the value to apply. min/max
//     document the tolerance band the physical stand may realise; D1–D3
//     carry extra method parameters (e.g. the PWM duty cycle).
//   - For a measurement status (get_*), min and max are the limits. If the
//     var(x) column names a variable, the limits are FACTORS of it: status
//     "Ho" is valid if the voltage lies between 0.7*Ubatt and 1.1*Ubatt —
//     which is exactly what the paper's generated XML encodes as
//     u_min="(0.7*ubatt)" u_max="(1.1*ubatt)". Without a var the limits
//     are absolute.
//   - For a get_can status, nom is the expected binary payload.
package status

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/expr"
	"repro/internal/method"
	"repro/internal/sheet"
	"repro/internal/unit"
)

// Status is one row of the status table, raw cells preserved verbatim so
// the paper's table can be re-emitted exactly.
type Status struct {
	Name   string
	Method string
	Attr   string
	Var    string
	Nom    string
	Min    string
	Max    string
	D      [3]string

	// Desc is the resolved method descriptor (set by Table parsing).
	Desc *method.Descriptor

	// Row is the 1-based sheet row the status was parsed from and Line
	// the 1-based source line of the workbook file (0 for
	// programmatically built rows). The static analyzers use them to
	// anchor findings.
	Row  int
	Line int
}

// Table is the parsed status definition sheet.
type Table struct {
	byName map[string]*Status
	order  []string
	reg    *method.Registry

	// SheetName is the name of the sheet the table was parsed from
	// ("" for programmatically built tables).
	SheetName string
}

// NewTable returns an empty table bound to a method registry.
func NewTable(reg *method.Registry) *Table {
	return &Table{byName: map[string]*Status{}, reg: reg}
}

// Add validates a status row against the method registry and inserts it.
func (t *Table) Add(s *Status) error {
	name := strings.TrimSpace(s.Name)
	if name == "" {
		return fmt.Errorf("status: row without status name")
	}
	key := strings.ToLower(name)
	if _, dup := t.byName[key]; dup {
		return fmt.Errorf("status: duplicate status %q", name)
	}
	d, ok := t.reg.Lookup(s.Method)
	if !ok {
		return fmt.Errorf("status %q: unknown method %q", name, s.Method)
	}
	s.Desc = d
	s.Name = name
	s.Method = d.Name
	if err := t.validate(s); err != nil {
		return err
	}
	t.byName[key] = s
	t.order = append(t.order, name)
	return nil
}

func (t *Table) validate(s *Status) error {
	d := s.Desc
	// The attribut column must name the method's primary quantity.
	if a := strings.TrimSpace(s.Attr); a != "" && a != d.RangeAttr {
		return fmt.Errorf("status %q: attribute %q does not match method %s (expects %q)",
			s.Name, a, d.Name, d.RangeAttr)
	}
	checkNumericOrExpr := func(col, v string) error {
		if strings.TrimSpace(v) == "" {
			return nil
		}
		if _, err := unit.ParseNumber(v); err == nil {
			return nil
		}
		if _, err := expr.Compile(v); err != nil {
			return fmt.Errorf("status %q: %s column %q is neither a number nor an expression", s.Name, col, v)
		}
		return nil
	}
	isBits := d.Attr(d.RangeAttr) != nil && d.Attr(d.RangeAttr).Kind == method.Bits
	switch d.Kind {
	case method.Stimulus:
		if strings.TrimSpace(s.Nom) == "" {
			return fmt.Errorf("status %q: stimulus method %s requires a nom value", s.Name, d.Name)
		}
		if isBits {
			if _, _, err := unit.ParseBits(s.Nom); err != nil {
				return fmt.Errorf("status %q: %v", s.Name, err)
			}
		} else if err := checkNumericOrExpr("nom", s.Nom); err != nil {
			return err
		}
	case method.Measure:
		if isBits {
			if strings.TrimSpace(s.Nom) == "" {
				return fmt.Errorf("status %q: CAN measurement requires an expected payload in nom", s.Name)
			}
			if _, _, err := unit.ParseBits(s.Nom); err != nil {
				return fmt.Errorf("status %q: %v", s.Name, err)
			}
		} else {
			if strings.TrimSpace(s.Min) == "" || strings.TrimSpace(s.Max) == "" {
				return fmt.Errorf("status %q: measurement method %s requires min and max limits", s.Name, d.Name)
			}
		}
	case method.Control:
		if strings.TrimSpace(s.Nom) == "" {
			return fmt.Errorf("status %q: control method %s requires a nom value", s.Name, d.Name)
		}
	}
	for _, col := range []struct{ n, v string }{{"min", s.Min}, {"max", s.Max}} {
		if !isBits {
			if err := checkNumericOrExpr(col.n, col.v); err != nil {
				return err
			}
		}
	}
	return nil
}

// Lookup finds a status by name (case-insensitive).
func (t *Table) Lookup(name string) (*Status, bool) {
	s, ok := t.byName[strings.ToLower(strings.TrimSpace(name))]
	return s, ok
}

// Names returns the status names in table order.
func (t *Table) Names() []string {
	out := make([]string, len(t.order))
	copy(out, t.order)
	return out
}

// Len returns the number of statuses.
func (t *Table) Len() int { return len(t.order) }

// Registry returns the method registry the table was built against.
func (t *Table) Registry() *method.Registry { return t.reg }

// ------------------------------------------------------- code generation --

// MethodCallAttrs computes the attribute assignment the XML generator
// emits for this status — the transformation from Table 2 of the paper to
// the script fragment of Section 3.
func (s *Status) MethodCallAttrs() (map[string]string, error) {
	d := s.Desc
	attrs := map[string]string{}
	isBits := d.Attr(d.RangeAttr) != nil && d.Attr(d.RangeAttr).Kind == method.Bits

	switch {
	case isBits:
		attrs["data"] = strings.TrimSpace(s.Nom)
	case d.Kind == method.Measure:
		lo, err := limitExpr(s.Min, s.Var)
		if err != nil {
			return nil, fmt.Errorf("status %q: min: %v", s.Name, err)
		}
		hi, err := limitExpr(s.Max, s.Var)
		if err != nil {
			return nil, fmt.Errorf("status %q: max: %v", s.Name, err)
		}
		attrs[d.RangeAttr+"_min"] = lo
		attrs[d.RangeAttr+"_max"] = hi
	default: // stimulus or control, numeric
		v, err := normalizeNumeric(s.Nom)
		if err != nil {
			return nil, fmt.Errorf("status %q: nom: %v", s.Name, err)
		}
		attrs[d.RangeAttr] = v
	}

	// Remaining attributes are filled from D1–D3 in schema order.
	di := 0
	for _, a := range d.Attrs {
		if _, done := attrs[a.Name]; done {
			continue
		}
		for di < len(s.D) && strings.TrimSpace(s.D[di]) == "" {
			di++
		}
		if di >= len(s.D) {
			if a.Required {
				return nil, fmt.Errorf("status %q: method %s requires attribute %q but no D parameter is left",
					s.Name, d.Name, a.Name)
			}
			continue
		}
		v, err := normalizeNumeric(s.D[di])
		if err != nil {
			return nil, fmt.Errorf("status %q: D%d: %v", s.Name, di+1, err)
		}
		attrs[a.Name] = v
		di++
	}
	if err := d.ValidateAttrs(attrs); err != nil {
		return nil, err
	}
	return attrs, nil
}

// limitExpr builds the symbolic limit string for a measurement limit cell:
// with a var it is "(factor*var)" — the paper's "(0.7*ubatt)" — otherwise
// the normalised absolute value.
func limitExpr(cell, varName string) (string, error) {
	v := strings.ToLower(strings.TrimSpace(varName))
	n, err := normalizeNumeric(cell)
	if err != nil {
		return "", err
	}
	if v == "" {
		return n, nil
	}
	if _, err := expr.Compile(v); err != nil {
		return "", fmt.Errorf("var %q: %v", varName, err)
	}
	return "(" + n + "*" + v + ")", nil
}

// normalizeNumeric turns a raw sheet cell into canonical English-decimal
// form for the XML script: numbers through unit.ParseNumber/FormatNumber
// (so "0,5" becomes "0.5" and "INF" stays "INF"), expressions re-rendered
// by the expr package.
func normalizeNumeric(cell string) (string, error) {
	c := strings.TrimSpace(cell)
	if c == "" {
		return "", fmt.Errorf("empty value")
	}
	if f, err := unit.ParseNumber(c); err == nil {
		return unit.FormatNumber(f), nil
	}
	e, err := expr.Compile(c)
	if err != nil {
		return "", fmt.Errorf("%q is neither a number nor an expression", cell)
	}
	return e.String(), nil
}

// EvalLimits evaluates a measurement status' limits against an
// environment (e.g. {"ubatt": 12}). It mirrors what the test stand does
// with the generated attribute expressions.
func (s *Status) EvalLimits(env expr.Env) (lo, hi float64, err error) {
	if !s.Desc.IsMeasure() {
		return 0, 0, fmt.Errorf("status %q: not a measurement status", s.Name)
	}
	attrs, err := s.MethodCallAttrs()
	if err != nil {
		return 0, 0, err
	}
	loSrc := attrs[s.Desc.RangeAttr+"_min"]
	hiSrc := attrs[s.Desc.RangeAttr+"_max"]
	le, err := expr.Compile(loSrc)
	if err != nil {
		return 0, 0, err
	}
	he, err := expr.Compile(hiSrc)
	if err != nil {
		return 0, 0, err
	}
	if lo, err = le.Eval(env); err != nil {
		return 0, 0, err
	}
	if hi, err = he.Eval(env); err != nil {
		return 0, 0, err
	}
	return lo, hi, nil
}

// StimulusValue returns the numeric value a stimulus status applies
// (resistance for put_r, voltage for put_u, …). For bits statuses use
// BitsValue.
func (s *Status) StimulusValue() (float64, error) {
	if !s.Desc.IsStimulus() && s.Desc.Kind != method.Control {
		return 0, fmt.Errorf("status %q: not a stimulus status", s.Name)
	}
	return unit.ParseNumber(s.Nom)
}

// BitsValue returns the payload of a CAN status.
func (s *Status) BitsValue() (value uint64, width int, err error) {
	return unit.ParseBits(s.Nom)
}

// ------------------------------------------------------------- sheet I/O --

// Column headers accepted in a status definition sheet. The spellings
// follow the paper ("attribut", "var (x)", "D 1").
var headerAliases = map[string][]string{
	"status": {"status"},
	"method": {"method"},
	"attr":   {"attribut", "attribute", "attr"},
	"var":    {"var (x)", "var(x)", "var", "x"},
	"nom":    {"nom", "nominal"},
	"min":    {"min"},
	"max":    {"max"},
	"d1":     {"d 1", "d1"},
	"d2":     {"d 2", "d2"},
	"d3":     {"d 3", "d3"},
}

func findColumn(s *sheet.Sheet, key string) int {
	for _, alias := range headerAliases[key] {
		if i := s.HeaderIndex(alias); i >= 0 {
			return i
		}
	}
	return -1
}

// ParseSheet reads a status definition sheet (first row = headers) into a
// Table validated against reg.
func ParseSheet(s *sheet.Sheet, reg *method.Registry) (*Table, error) {
	if s == nil {
		return nil, fmt.Errorf("status: nil sheet")
	}
	cols := map[string]int{}
	for key := range headerAliases {
		cols[key] = findColumn(s, key)
	}
	for _, required := range []string{"status", "method"} {
		if cols[required] < 0 {
			return nil, fmt.Errorf("status: sheet %q lacks a %q column", s.Name, required)
		}
	}
	t := NewTable(reg)
	t.SheetName = s.Name
	for r := 1; r < s.NumRows(); r++ {
		if s.IsEmptyRow(r) {
			continue
		}
		get := func(key string) string {
			if cols[key] < 0 {
				return ""
			}
			return s.At(r, cols[key])
		}
		st := &Status{
			Name:   get("status"),
			Method: get("method"),
			Attr:   get("attr"),
			Var:    get("var"),
			Nom:    get("nom"),
			Min:    get("min"),
			Max:    get("max"),
			D:      [3]string{get("d1"), get("d2"), get("d3")},
			Row:    r + 1,
			Line:   s.RowLine(r),
		}
		if err := t.Add(st); err != nil {
			return nil, fmt.Errorf("status: sheet %q row %d: %v", s.Name, r+1, err)
		}
	}
	if t.Len() == 0 {
		return nil, fmt.Errorf("status: sheet %q contains no status rows", s.Name)
	}
	return t, nil
}

// ToSheet re-emits the table as a sheet with the paper's column layout,
// preserving the original raw cells.
func (t *Table) ToSheet(name string) *sheet.Sheet {
	s := sheet.NewSheet(name)
	s.AppendRow("status", "method", "attribut", "var (x)", "nom", "min", "max", "D 1", "D 2", "D 3")
	for _, n := range t.order {
		st := t.byName[strings.ToLower(n)]
		s.AppendRow(st.Name, st.Method, st.Attr, st.Var, st.Nom, st.Min, st.Max, st.D[0], st.D[1], st.D[2])
	}
	return s
}

// Statuses returns the statuses in table order.
func (t *Table) Statuses() []*Status {
	out := make([]*Status, 0, len(t.order))
	for _, n := range t.order {
		out = append(out, t.byName[strings.ToLower(n)])
	}
	return out
}

// UsedMethods returns the sorted set of method names referenced by the
// table — what a test stand must support to run tests written against it.
func (t *Table) UsedMethods() []string {
	set := map[string]bool{}
	for _, s := range t.byName {
		set[s.Method] = true
	}
	out := make([]string, 0, len(set))
	for m := range set {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}
