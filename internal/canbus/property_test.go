package canbus

import (
	"math/rand"
	"testing"
)

// Property tests for the signal packing code: for random (start,
// length, value) triples, InsertSignal*/ExtractSignal* must round-trip
// in both byte orders, and inserting must not disturb the payload bits
// outside the signal. All randomness flows through an injected,
// seeded *rand.Rand (the repo-wide determinism rule).

// randomBackground fills a frame with random payload bits.
func randomBackground(rng *rand.Rand) Frame {
	f := Frame{DLC: MaxDataBytes}
	for i := range f.Data {
		f.Data[i] = byte(rng.Intn(256))
	}
	return f
}

// signalMask returns the set of absolute bit positions the signal
// occupies under the given order.
func signalMask(t *testing.T, order ByteOrder, start, length int) map[int]bool {
	t.Helper()
	bits := map[int]bool{}
	if order == Intel {
		for i := 0; i < length; i++ {
			bits[start+i] = true
		}
		return bits
	}
	walk, err := motorolaWalk(start, length)
	if err != nil {
		t.Fatalf("motorolaWalk(%d, %d): %v", start, length, err)
	}
	for _, b := range walk {
		bits[b] = true
	}
	return bits
}

func bitAt(f *Frame, bit int) bool {
	return f.Data[bit/8]>>(bit%8)&1 == 1
}

func TestSignalRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, order := range []ByteOrder{Intel, Motorola} {
		tried := 0
		for tried < 1000 {
			start := rng.Intn(MaxDataBytes * 8)
			length := 1 + rng.Intn(64)
			if CheckSignalRange(order, start, length) != nil {
				continue // e.g. a Motorola sawtooth leaving the frame
			}
			tried++
			value := rng.Uint64()
			if length < 64 {
				value &= 1<<uint(length) - 1
			}

			before := randomBackground(rng)
			f := before
			if err := f.InsertSignalOrder(order, start, length, value); err != nil {
				t.Fatalf("%v insert(start=%d len=%d v=%d): %v", order, start, length, value, err)
			}
			got, err := f.ExtractSignalOrder(order, start, length)
			if err != nil {
				t.Fatalf("%v extract(start=%d len=%d): %v", order, start, length, err)
			}
			if got != value {
				t.Fatalf("%v round trip start=%d len=%d: wrote %d, read %d", order, start, length, value, got)
			}
			// Bits outside the signal must be untouched.
			mask := signalMask(t, order, start, length)
			for bit := 0; bit < MaxDataBytes*8; bit++ {
				if mask[bit] {
					continue
				}
				if bitAt(&before, bit) != bitAt(&f, bit) {
					t.Fatalf("%v insert start=%d len=%d disturbed unrelated bit %d", order, start, length, bit)
				}
			}
		}
	}
}

func TestSignalCrossOrderIndependence(t *testing.T) {
	// Writing the same (start, length) in the two orders addresses
	// different bit sets (except degenerate single-bit signals); the
	// property test above covers each order, this pins that a Motorola
	// extract of an Intel insert is NOT generally the identity.
	var f Frame
	if err := f.InsertSignalOrder(Intel, 8, 16, 0xBEEF); err != nil {
		t.Fatal(err)
	}
	intel, err := f.ExtractSignalOrder(Intel, 8, 16)
	if err != nil {
		t.Fatal(err)
	}
	moto, err := f.ExtractSignalOrder(Motorola, 8, 16)
	if err != nil {
		t.Fatal(err)
	}
	if intel != 0xBEEF {
		t.Fatalf("intel readback = %#x", intel)
	}
	if moto == intel {
		t.Error("motorola extract unexpectedly equals intel extract for a multi-byte signal")
	}
}

func TestMotorolaWalkEdgeCases(t *testing.T) {
	// The sawtooth: from a byte's bit 0 the walk continues at bit 7 of
	// the NEXT byte.
	walk, err := motorolaWalk(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 0, 15, 14}
	for i, w := range want {
		if walk[i] != w {
			t.Fatalf("motorolaWalk(1,4) = %v, want %v", walk, want)
		}
	}
	// Full-frame 64-bit signal starting at the canonical DBC MSB.
	if err := CheckSignalRange(Motorola, 7, 64); err != nil {
		t.Errorf("64-bit motorola signal at start 7 rejected: %v", err)
	}
	// Signals whose sawtooth leaves the frame must be rejected up front.
	for _, c := range []struct{ start, length int }{
		{0, 2},   // bit 0 wraps to bit 15 — fine; {0,2} stays inside: walk [0,15]
		{56, 64}, // would leave the frame
		{63, 64}, // would leave the frame
	} {
		err := CheckSignalRange(Motorola, c.start, c.length)
		switch {
		case c.start == 0 && c.length == 2:
			if err != nil {
				t.Errorf("CheckSignalRange(Motorola, 0, 2) = %v, want nil (walk wraps to bit 15)", err)
			}
		default:
			if err == nil {
				t.Errorf("CheckSignalRange(Motorola, %d, %d) accepted a signal leaving the frame", c.start, c.length)
			}
		}
	}
	// Invalid ranges in both orders.
	for _, order := range []ByteOrder{Intel, Motorola} {
		for _, c := range []struct{ start, length int }{
			{-1, 4}, {0, 0}, {0, 65}, {64, 1},
		} {
			if err := CheckSignalRange(order, c.start, c.length); err == nil {
				t.Errorf("CheckSignalRange(%v, %d, %d) accepted", order, c.start, c.length)
			}
		}
	}
	// Intel signals running past byte 7 are rejected.
	if err := CheckSignalRange(Intel, 60, 8); err == nil {
		t.Error("intel signal past the frame end accepted")
	}
}

func TestInsertRejectsOversizedValues(t *testing.T) {
	var f Frame
	for _, order := range []ByteOrder{Intel, Motorola} {
		if err := f.InsertSignalOrder(order, 8, 4, 16); err == nil {
			t.Errorf("%v: value 16 accepted for a 4-bit signal", order)
		}
	}
}
