// Package canbus is the CAN substrate of the simulated test stand. The
// paper's example DUT receives the ignition status IGN_ST and the NIGHT
// bit "coming from a light sensor" over the vehicle bus; the stand's CAN
// adapter realises put_can/get_can. This package provides frames, a
// message database, Intel-format signal packing (start bit + length, as
// in the signal definition sheet) and an in-memory broadcast bus driven
// by the discrete-event kernel.
package canbus

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/event"
)

// MaxDataBytes is the classic CAN payload limit.
const MaxDataBytes = 8

// Latency is the simulated transmission latency of one frame. It is the
// dominant contribution of arbitration + 8 data bytes at 500 kbit/s.
const Latency = 250 * time.Microsecond

// Frame is one CAN data frame.
type Frame struct {
	ID   uint32
	DLC  int
	Data [MaxDataBytes]byte
}

// String renders the frame as "id#deadbeef" (candump style).
func (f Frame) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%03X#", f.ID)
	for i := 0; i < f.DLC; i++ {
		fmt.Fprintf(&b, "%02X", f.Data[i])
	}
	return b.String()
}

// InsertSignal writes a value into the frame's payload at the given Intel
// (little-endian) start bit. Bit k lives in byte k/8, bit position k%8.
func (f *Frame) InsertSignal(start, length int, value uint64) error {
	if err := checkBits(start, length); err != nil {
		return err
	}
	if length < 64 && value >= 1<<uint(length) {
		return fmt.Errorf("canbus: value %d does not fit in %d bits", value, length)
	}
	for i := 0; i < length; i++ {
		bit := start + i
		mask := byte(1) << uint(bit%8)
		if value>>uint(i)&1 == 1 {
			f.Data[bit/8] |= mask
		} else {
			f.Data[bit/8] &^= mask
		}
	}
	if need := (start + length + 7) / 8; f.DLC < need {
		f.DLC = need
	}
	return nil
}

// ExtractSignal reads a value from the frame's payload.
func (f *Frame) ExtractSignal(start, length int) (uint64, error) {
	if err := checkBits(start, length); err != nil {
		return 0, err
	}
	var v uint64
	for i := length - 1; i >= 0; i-- {
		bit := start + i
		v <<= 1
		if f.Data[bit/8]>>uint(bit%8)&1 == 1 {
			v |= 1
		}
	}
	return v, nil
}

func checkBits(start, length int) error {
	if length <= 0 || length > 64 || start < 0 || start+length > MaxDataBytes*8 {
		return fmt.Errorf("canbus: invalid bit range start=%d length=%d", start, length)
	}
	return nil
}

// ByteOrder selects the signal packing convention.
type ByteOrder int

const (
	// Intel is little-endian packing (the default of this tool chain):
	// the start bit is the LSB, successive bits ascend.
	Intel ByteOrder = iota
	// Motorola is big-endian packing as in DBC files: the start bit is
	// the MSB; successive bits descend within a byte and continue at bit
	// 7 of the following byte (the "sawtooth").
	Motorola
)

// String implements fmt.Stringer.
func (o ByteOrder) String() string {
	if o == Motorola {
		return "motorola"
	}
	return "intel"
}

// ParseByteOrder parses a byte-order column value; empty means Intel.
func ParseByteOrder(s string) (ByteOrder, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "intel", "little", "le", "0":
		return Intel, nil
	case "motorola", "big", "be", "1":
		return Motorola, nil
	}
	return Intel, fmt.Errorf("canbus: unknown byte order %q", s)
}

// CheckSignalRange validates that a signal with the given packing fits a
// classic CAN frame.
func CheckSignalRange(order ByteOrder, start, length int) error {
	if order == Motorola {
		_, err := motorolaWalk(start, length)
		return err
	}
	return checkBits(start, length)
}

// motorolaWalk enumerates the absolute bit positions of a Motorola signal
// from MSB to LSB, or errors when the sawtooth leaves the frame.
func motorolaWalk(start, length int) ([]int, error) {
	if length <= 0 || length > 64 || start < 0 || start >= MaxDataBytes*8 {
		return nil, fmt.Errorf("canbus: invalid bit range start=%d length=%d", start, length)
	}
	out := make([]int, length)
	pos := start
	for i := 0; i < length; i++ {
		if pos < 0 || pos >= MaxDataBytes*8 {
			return nil, fmt.Errorf("canbus: motorola signal start=%d length=%d leaves the frame", start, length)
		}
		out[i] = pos
		if pos%8 == 0 {
			pos += 15 // wrap to bit 7 of the next byte
		} else {
			pos--
		}
	}
	return out, nil
}

// InsertSignalOrder writes a value using the given byte order.
func (f *Frame) InsertSignalOrder(order ByteOrder, start, length int, value uint64) error {
	if order == Intel {
		return f.InsertSignal(start, length, value)
	}
	if length < 64 && value >= 1<<uint(length) {
		return fmt.Errorf("canbus: value %d does not fit in %d bits", value, length)
	}
	walk, err := motorolaWalk(start, length)
	if err != nil {
		return err
	}
	for i, bit := range walk { // walk[0] carries the MSB
		mask := byte(1) << uint(bit%8)
		if value>>uint(length-1-i)&1 == 1 {
			f.Data[bit/8] |= mask
		} else {
			f.Data[bit/8] &^= mask
		}
		if need := bit/8 + 1; f.DLC < need {
			f.DLC = need
		}
	}
	return nil
}

// ExtractSignalOrder reads a value using the given byte order.
func (f *Frame) ExtractSignalOrder(order ByteOrder, start, length int) (uint64, error) {
	if order == Intel {
		return f.ExtractSignal(start, length)
	}
	walk, err := motorolaWalk(start, length)
	if err != nil {
		return 0, err
	}
	var v uint64
	for _, bit := range walk {
		v <<= 1
		if f.Data[bit/8]>>uint(bit%8)&1 == 1 {
			v |= 1
		}
	}
	return v, nil
}

// ------------------------------------------------------------ message DB --

// MessageDef describes one frame type in the database.
type MessageDef struct {
	Name string
	ID   uint32
	DLC  int
}

// DB maps message names (as used in signal definition sheets) to CAN IDs.
// Stand and DUT share one DB so both sides agree on the identifiers.
type DB struct {
	byName map[string]*MessageDef
	byID   map[uint32]*MessageDef
	nextID uint32
}

// NewDB returns an empty database. Auto-assigned IDs start at 0x100.
func NewDB() *DB {
	return &DB{
		byName: map[string]*MessageDef{},
		byID:   map[uint32]*MessageDef{},
		nextID: 0x100,
	}
}

// Define registers a message with an explicit ID.
func (db *DB) Define(name string, id uint32, dlc int) (*MessageDef, error) {
	key := strings.ToLower(strings.TrimSpace(name))
	if key == "" {
		return nil, fmt.Errorf("canbus: message without name")
	}
	if dlc < 0 || dlc > MaxDataBytes {
		return nil, fmt.Errorf("canbus: message %q: invalid DLC %d", name, dlc)
	}
	if _, dup := db.byName[key]; dup {
		return nil, fmt.Errorf("canbus: duplicate message %q", name)
	}
	if _, dup := db.byID[id]; dup {
		return nil, fmt.Errorf("canbus: duplicate CAN id 0x%X", id)
	}
	m := &MessageDef{Name: strings.TrimSpace(name), ID: id, DLC: dlc}
	db.byName[key] = m
	db.byID[id] = m
	return m, nil
}

// Ensure returns the message with the given name, auto-assigning the next
// free ID (from 0x100) if it does not exist yet.
func (db *DB) Ensure(name string) (*MessageDef, error) {
	key := strings.ToLower(strings.TrimSpace(name))
	if m, ok := db.byName[key]; ok {
		return m, nil
	}
	for {
		if _, taken := db.byID[db.nextID]; !taken {
			break
		}
		db.nextID++
	}
	m, err := db.Define(name, db.nextID, MaxDataBytes)
	if err != nil {
		return nil, err
	}
	db.nextID++
	return m, nil
}

// Lookup finds a message by name.
func (db *DB) Lookup(name string) (*MessageDef, bool) {
	m, ok := db.byName[strings.ToLower(strings.TrimSpace(name))]
	return m, ok
}

// LookupID finds a message by CAN id.
func (db *DB) LookupID(id uint32) (*MessageDef, bool) {
	m, ok := db.byID[id]
	return m, ok
}

// Names returns all message names, sorted.
func (db *DB) Names() []string {
	out := make([]string, 0, len(db.byName))
	for _, m := range db.byName {
		out = append(out, m.Name)
	}
	sort.Strings(out)
	return out
}

// ------------------------------------------------------------------ bus --

// Bus is an in-memory broadcast CAN bus. Frames transmitted by one node
// are delivered to every other node after Latency, in simulated time.
type Bus struct {
	sched *event.Scheduler
	nodes []*Node
	txCnt uint64
	// epoch invalidates in-flight deliveries: each delivery event
	// carries the epoch of its transmission and is dropped when Purge
	// has been called in between. Frames are copied at transmit time,
	// so clearing a TxGroup or resetting a DUT cannot retract a frame
	// already on the wire — only Purge can.
	epoch uint64
}

// Purge drops every in-flight frame delivery: frames transmitted before
// the call never reach any node. A stand reset uses this so a reused
// bus starts from the same silence as a power-cycled one — without it,
// a delivery scheduled just before the reset would fire just after it
// and latch a pre-reset payload into the freshly cleared monitors.
func (b *Bus) Purge() { b.epoch++ }

// NewBus creates a bus on the given scheduler.
func NewBus(sched *event.Scheduler) *Bus {
	if sched == nil {
		panic("canbus: nil scheduler")
	}
	return &Bus{sched: sched}
}

// FramesSent returns the number of frames transmitted since creation.
func (b *Bus) FramesSent() uint64 { return b.txCnt }

// Node is one bus participant.
type Node struct {
	bus  *Bus
	name string
	rx   func(Frame)
}

// Attach adds a node. The rx callback (may be nil) runs for every frame
// transmitted by any OTHER node, in simulated time order.
func (b *Bus) Attach(name string, rx func(Frame)) *Node {
	n := &Node{bus: b, name: name, rx: rx}
	b.nodes = append(b.nodes, n)
	return n
}

// Name returns the node name.
func (n *Node) Name() string { return n.name }

// Transmit broadcasts a frame from this node.
func (n *Node) Transmit(f Frame) {
	n.bus.txCnt++
	epoch := n.bus.epoch
	n.bus.sched.After(Latency, func() {
		if n.bus.epoch != epoch {
			return
		}
		for _, other := range n.bus.nodes {
			if other != n && other.rx != nil {
				other.rx(f)
			}
		}
	})
}

// transmitAll broadcasts a batch of frames as one bus event: delivery
// order and timing are identical to transmitting them back to back, but
// only a single event is scheduled — the periodic keep-alive path uses
// this to stay cheap on the event queue. The frames are copied at
// transmit time, exactly like Transmit's by-value parameter.
func (n *Node) transmitAll(frames []Frame) {
	if len(frames) == 0 {
		return
	}
	n.bus.txCnt += uint64(len(frames))
	epoch := n.bus.epoch
	n.bus.sched.After(Latency, func() {
		if n.bus.epoch != epoch {
			return
		}
		for i := range frames {
			for _, other := range n.bus.nodes {
				if other != n && other.rx != nil {
					other.rx(frames[i])
				}
			}
		}
	})
}

// ------------------------------------------------------------- tx groups --

// TxGroup maintains the current payload of a set of messages and
// retransmits them periodically, the way a real ECU or restbus simulation
// keeps its frames alive. Signal updates change the payload and trigger
// an immediate transmission.
type TxGroup struct {
	node   *Node
	db     *DB
	period time.Duration
	frames map[uint32]*Frame
	// sorted caches the id-ordered frame pointers; nil after a new id
	// is added. snap is the reusable payload snapshot handed to the
	// batched periodic transmission (safe to reuse because the period
	// exceeds the bus latency, so the previous batch is delivered
	// before the buffer is rewritten).
	sorted   []*Frame
	snap     []Frame
	periodic *event.Periodic
}

// NewTxGroup creates a periodic transmitter on the node. A period of 0
// disables periodic retransmission (frames go out only on change).
func NewTxGroup(node *Node, db *DB, period time.Duration, sched *event.Scheduler) *TxGroup {
	g := &TxGroup{node: node, db: db, period: period, frames: map[uint32]*Frame{}}
	if period > 0 {
		g.periodic = sched.Periodic(period, g.retransmit)
	}
	return g
}

func (g *TxGroup) retransmit() {
	frames := g.sortedFrames()
	if len(frames) == 0 {
		return
	}
	if g.period > Latency {
		g.snap = g.snap[:0]
		for _, f := range frames {
			g.snap = append(g.snap, *f)
		}
		g.node.transmitAll(g.snap)
		return
	}
	for _, f := range frames {
		g.node.Transmit(*f)
	}
}

func (g *TxGroup) sortedFrames() []*Frame {
	if g.sorted != nil {
		return g.sorted
	}
	ids := make([]uint32, 0, len(g.frames))
	for id := range g.frames {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make([]*Frame, len(ids))
	for i, id := range ids {
		out[i] = g.frames[id]
	}
	g.sorted = out
	return out
}

// Suspend parks the periodic retransmission (idle fast-forward support);
// explicit SetSignal transmissions keep working.
func (g *TxGroup) Suspend() {
	if g.periodic != nil {
		g.periodic.Suspend()
	}
}

// Resume re-arms periodic retransmission on its original phase grid.
func (g *TxGroup) Resume() {
	if g.periodic != nil {
		g.periodic.Resume()
	}
}

// Clear drops all frame payloads, returning the group to its power-on
// state. The next retransmission sends nothing until signals are set
// again.
func (g *TxGroup) Clear() {
	g.frames = map[uint32]*Frame{}
	g.sorted = nil
}

// SetSignal updates an Intel-packed signal inside the named message and
// transmits the frame immediately.
func (g *TxGroup) SetSignal(message string, start, length int, value uint64) error {
	return g.SetSignalOrder(Intel, message, start, length, value)
}

// SetSignalOrder is SetSignal with an explicit byte order.
func (g *TxGroup) SetSignalOrder(order ByteOrder, message string, start, length int, value uint64) error {
	m, err := g.db.Ensure(message)
	if err != nil {
		return err
	}
	f, ok := g.frames[m.ID]
	if !ok {
		f = &Frame{ID: m.ID, DLC: m.DLC}
		g.frames[m.ID] = f
		g.sorted = nil
	}
	if err := f.InsertSignalOrder(order, start, length, value); err != nil {
		return err
	}
	g.node.Transmit(*f)
	return nil
}

// Stop cancels periodic retransmission.
func (g *TxGroup) Stop() {
	if g.periodic != nil {
		g.periodic.Stop()
		g.periodic = nil
	}
}

// -------------------------------------------------------------- monitor --

// Monitor caches the most recent frame per CAN id, like a latching
// receive buffer — the get_can side of the stand's CAN adapter.
type Monitor struct {
	last map[uint32]Frame
	seen map[uint32]uint64
}

// NewMonitor creates an empty monitor; attach its Rx to a bus node.
func NewMonitor() *Monitor {
	return &Monitor{last: map[uint32]Frame{}, seen: map[uint32]uint64{}}
}

// Rx is the bus receive callback.
func (m *Monitor) Rx(f Frame) {
	m.last[f.ID] = f
	m.seen[f.ID]++
}

// Last returns the most recent frame with the given id.
func (m *Monitor) Last(id uint32) (Frame, bool) {
	f, ok := m.last[id]
	return f, ok
}

// Count returns how many frames with the id have been received.
func (m *Monitor) Count(id uint32) uint64 { return m.seen[id] }

// Clear drops all latched frames and counts, returning the monitor to
// its power-on state (nothing received yet).
func (m *Monitor) Clear() {
	clear(m.last)
	clear(m.seen)
}

// Signal extracts an Intel-packed signal from the latest frame of the
// named message.
func (m *Monitor) Signal(db *DB, message string, start, length int) (uint64, error) {
	return m.SignalOrder(Intel, db, message, start, length)
}

// SignalOrder is Signal with an explicit byte order.
func (m *Monitor) SignalOrder(order ByteOrder, db *DB, message string, start, length int) (uint64, error) {
	def, ok := db.Lookup(message)
	if !ok {
		return 0, fmt.Errorf("canbus: unknown message %q", message)
	}
	f, ok := m.last[def.ID]
	if !ok {
		return 0, fmt.Errorf("canbus: no frame of %q received yet", message)
	}
	return f.ExtractSignalOrder(order, start, length)
}
