package canbus

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/event"
)

func TestInsertExtract(t *testing.T) {
	var f Frame
	if err := f.InsertSignal(0, 4, 0b0001); err != nil {
		t.Fatal(err)
	}
	if err := f.InsertSignal(4, 1, 1); err != nil {
		t.Fatal(err)
	}
	v, err := f.ExtractSignal(0, 4)
	if err != nil || v != 1 {
		t.Errorf("IGN_ST = %v, %v", v, err)
	}
	v, err = f.ExtractSignal(4, 1)
	if err != nil || v != 1 {
		t.Errorf("NIGHT = %v, %v", v, err)
	}
	if f.DLC != 1 {
		t.Errorf("DLC = %d, want 1", f.DLC)
	}
}

func TestInsertDoesNotClobberNeighbours(t *testing.T) {
	var f Frame
	if err := f.InsertSignal(0, 8, 0xFF); err != nil {
		t.Fatal(err)
	}
	if err := f.InsertSignal(2, 3, 0); err != nil {
		t.Fatal(err)
	}
	v, _ := f.ExtractSignal(0, 8)
	if v != 0b11100011 {
		t.Errorf("payload = %08b", v)
	}
}

func TestCrossByteSignal(t *testing.T) {
	var f Frame
	if err := f.InsertSignal(6, 10, 0x2AB); err != nil {
		t.Fatal(err)
	}
	v, err := f.ExtractSignal(6, 10)
	if err != nil || v != 0x2AB {
		t.Errorf("cross-byte = %#x, %v", v, err)
	}
	if f.DLC != 2 {
		t.Errorf("DLC = %d, want 2", f.DLC)
	}
}

func TestInsertExtractProperty(t *testing.T) {
	f := func(start8 uint8, len6 uint8, val uint64) bool {
		length := int(len6%64) + 1
		start := int(start8) % (64 - length + 1)
		if length < 64 {
			val &= 1<<uint(length) - 1
		}
		var fr Frame
		// Pre-fill with noise; the signal must still round-trip and the
		// noise outside the field must survive.
		for i := range fr.Data {
			fr.Data[i] = 0xA5
		}
		if err := fr.InsertSignal(start, length, val); err != nil {
			return false
		}
		got, err := fr.ExtractSignal(start, length)
		return err == nil && got == val
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestBitRangeErrors(t *testing.T) {
	var f Frame
	bad := [][2]int{{-1, 4}, {0, 0}, {0, 65}, {60, 8}, {64, 1}}
	for _, c := range bad {
		if err := f.InsertSignal(c[0], c[1], 0); err == nil {
			t.Errorf("InsertSignal(%d,%d) succeeded", c[0], c[1])
		}
		if _, err := f.ExtractSignal(c[0], c[1]); err == nil {
			t.Errorf("ExtractSignal(%d,%d) succeeded", c[0], c[1])
		}
	}
	if err := f.InsertSignal(0, 2, 5); err == nil {
		t.Error("oversized value accepted")
	}
}

func TestFrameString(t *testing.T) {
	f := Frame{ID: 0x100, DLC: 2, Data: [8]byte{0xDE, 0xAD}}
	if got := f.String(); got != "100#DEAD" {
		t.Errorf("String = %q", got)
	}
}

func TestDBDefineLookup(t *testing.T) {
	db := NewDB()
	m, err := db.Define("BCM_STAT", 0x2A0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if m.ID != 0x2A0 {
		t.Errorf("ID = %#x", m.ID)
	}
	got, ok := db.Lookup("bcm_stat")
	if !ok || got != m {
		t.Error("case-insensitive lookup failed")
	}
	if _, ok := db.LookupID(0x2A0); !ok {
		t.Error("LookupID failed")
	}
	if _, err := db.Define("BCM_STAT", 0x2A1, 8); err == nil {
		t.Error("duplicate name accepted")
	}
	if _, err := db.Define("OTHER", 0x2A0, 8); err == nil {
		t.Error("duplicate id accepted")
	}
	if _, err := db.Define("", 1, 8); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := db.Define("X", 1, 9); err == nil {
		t.Error("DLC 9 accepted")
	}
}

func TestDBEnsure(t *testing.T) {
	db := NewDB()
	a, err := db.Ensure("A")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := db.Ensure("B")
	if a.ID == b.ID {
		t.Error("auto ids collide")
	}
	a2, _ := db.Ensure("a")
	if a2 != a {
		t.Error("Ensure not idempotent")
	}
	// Ensure skips explicitly taken ids.
	db2 := NewDB()
	if _, err := db2.Define("X", 0x100, 8); err != nil {
		t.Fatal(err)
	}
	y, _ := db2.Ensure("Y")
	if y.ID == 0x100 {
		t.Error("Ensure reused a taken id")
	}
}

func TestDBNames(t *testing.T) {
	db := NewDB()
	_, _ = db.Ensure("Zeta")
	_, _ = db.Ensure("Alpha")
	names := db.Names()
	if len(names) != 2 || names[0] != "Alpha" || names[1] != "Zeta" {
		t.Errorf("Names = %v", names)
	}
}

func TestBusBroadcast(t *testing.T) {
	var sched event.Scheduler
	bus := NewBus(&sched)
	var gotB, gotC []Frame
	nodeA := bus.Attach("a", nil)
	bus.Attach("b", func(f Frame) { gotB = append(gotB, f) })
	bus.Attach("c", func(f Frame) { gotC = append(gotC, f) })

	f := Frame{ID: 1, DLC: 1, Data: [8]byte{42}}
	nodeA.Transmit(f)
	if len(gotB) != 0 {
		t.Error("frame delivered before latency elapsed")
	}
	sched.Advance(Latency)
	if len(gotB) != 1 || len(gotC) != 1 || gotB[0].Data[0] != 42 {
		t.Errorf("delivery failed: %v %v", gotB, gotC)
	}
	if bus.FramesSent() != 1 {
		t.Errorf("FramesSent = %d", bus.FramesSent())
	}
	if nodeA.Name() != "a" {
		t.Errorf("Name = %q", nodeA.Name())
	}
}

func TestNoLoopback(t *testing.T) {
	var sched event.Scheduler
	bus := NewBus(&sched)
	var got []Frame
	n := bus.Attach("self", func(f Frame) { got = append(got, f) })
	n.Transmit(Frame{ID: 7})
	sched.Advance(time.Millisecond)
	if len(got) != 0 {
		t.Error("node received its own frame")
	}
}

func TestTxGroupImmediateAndPeriodic(t *testing.T) {
	var sched event.Scheduler
	bus := NewBus(&sched)
	db := NewDB()
	mon := NewMonitor()
	bus.Attach("dut", mon.Rx)
	stand := bus.Attach("stand", nil)
	g := NewTxGroup(stand, db, 20*time.Millisecond, &sched)
	defer g.Stop()

	if err := g.SetSignal("BCM_STAT", 0, 4, 1); err != nil {
		t.Fatal(err)
	}
	sched.Advance(time.Millisecond)
	def, _ := db.Lookup("BCM_STAT")
	if _, ok := mon.Last(def.ID); !ok {
		t.Fatal("immediate transmission missing")
	}
	v, err := mon.Signal(db, "BCM_STAT", 0, 4)
	if err != nil || v != 1 {
		t.Errorf("signal = %v, %v", v, err)
	}
	// Periodic keepalive retransmits.
	before := mon.Count(def.ID)
	sched.Advance(100 * time.Millisecond)
	if after := mon.Count(def.ID); after < before+4 {
		t.Errorf("periodic frames: %d -> %d", before, after)
	}
	// Updating a second signal must keep the first one's bits.
	if err := g.SetSignal("BCM_STAT", 4, 1, 1); err != nil {
		t.Fatal(err)
	}
	sched.Advance(time.Millisecond)
	v, _ = mon.Signal(db, "BCM_STAT", 0, 4)
	if v != 1 {
		t.Errorf("first signal clobbered: %v", v)
	}
	v, _ = mon.Signal(db, "BCM_STAT", 4, 1)
	if v != 1 {
		t.Errorf("second signal = %v", v)
	}
}

func TestTxGroupStop(t *testing.T) {
	var sched event.Scheduler
	bus := NewBus(&sched)
	db := NewDB()
	mon := NewMonitor()
	bus.Attach("dut", mon.Rx)
	stand := bus.Attach("stand", nil)
	g := NewTxGroup(stand, db, 10*time.Millisecond, &sched)
	if err := g.SetSignal("M", 0, 1, 1); err != nil {
		t.Fatal(err)
	}
	g.Stop()
	def, _ := db.Lookup("M")
	sched.Advance(50 * time.Millisecond)
	if mon.Count(def.ID) != 1 {
		t.Errorf("frames after Stop = %d, want 1", mon.Count(def.ID))
	}
	g.Stop() // double Stop is a no-op
}

func TestMonitorErrors(t *testing.T) {
	db := NewDB()
	mon := NewMonitor()
	if _, err := mon.Signal(db, "GHOST", 0, 1); err == nil {
		t.Error("unknown message accepted")
	}
	if _, err := db.Ensure("M"); err != nil {
		t.Fatal("Ensure failed")
	}
	if _, err := mon.Signal(db, "M", 0, 1); err == nil {
		t.Error("signal from never-received message accepted")
	}
}

func TestMultipleMessagesKeepApart(t *testing.T) {
	var sched event.Scheduler
	bus := NewBus(&sched)
	db := NewDB()
	mon := NewMonitor()
	bus.Attach("dut", mon.Rx)
	stand := bus.Attach("stand", nil)
	g := NewTxGroup(stand, db, 0, &sched)
	_ = g.SetSignal("M1", 0, 8, 0x11)
	_ = g.SetSignal("M2", 0, 8, 0x22)
	sched.Advance(time.Millisecond)
	v1, _ := mon.Signal(db, "M1", 0, 8)
	v2, _ := mon.Signal(db, "M2", 0, 8)
	if v1 != 0x11 || v2 != 0x22 {
		t.Errorf("messages mixed: %#x %#x", v1, v2)
	}
}

func TestMotorolaKnownPattern(t *testing.T) {
	// The canonical DBC example: a 12-bit Motorola signal starting at bit
	// 7 (MSB of byte 0) occupies byte 0 entirely plus the top nibble of
	// byte 1.
	var f Frame
	if err := f.InsertSignalOrder(Motorola, 7, 12, 0xABC); err != nil {
		t.Fatal(err)
	}
	if f.Data[0] != 0xAB || f.Data[1] != 0xC0 {
		t.Errorf("payload = % X, want AB C0", f.Data[:2])
	}
	v, err := f.ExtractSignalOrder(Motorola, 7, 12)
	if err != nil || v != 0xABC {
		t.Errorf("extract = %#x, %v", v, err)
	}
	if f.DLC != 2 {
		t.Errorf("DLC = %d, want 2", f.DLC)
	}
}

func TestMotorolaSingleBit(t *testing.T) {
	var f Frame
	if err := f.InsertSignalOrder(Motorola, 0, 1, 1); err != nil {
		t.Fatal(err)
	}
	if f.Data[0] != 0x01 {
		t.Errorf("payload = %02X", f.Data[0])
	}
}

func TestMotorolaSawtoothBounds(t *testing.T) {
	var f Frame
	// Starting at bit 0 (LSB of byte 0) a 2-bit Motorola signal must wrap
	// to bit 15 — legal. Starting at bit 56 with 64 bits leaves the frame.
	if err := f.InsertSignalOrder(Motorola, 0, 2, 3); err != nil {
		t.Fatal(err)
	}
	v, _ := f.ExtractSignalOrder(Motorola, 0, 2)
	if v != 3 {
		t.Errorf("wrap extract = %v", v)
	}
	if err := f.InsertSignalOrder(Motorola, 56, 64, 0); err == nil {
		t.Error("out-of-frame sawtooth accepted")
	}
	if _, err := f.ExtractSignalOrder(Motorola, -1, 4); err == nil {
		t.Error("negative start accepted")
	}
	if err := f.InsertSignalOrder(Motorola, 7, 2, 4); err == nil {
		t.Error("oversized value accepted")
	}
}

func TestMotorolaRoundTripProperty(t *testing.T) {
	f := func(start8 uint8, len6 uint8, val uint64) bool {
		length := int(len6%32) + 1
		start := int(start8) % 64
		if length < 64 {
			val &= 1<<uint(length) - 1
		}
		var fr Frame
		for i := range fr.Data {
			fr.Data[i] = 0x5A
		}
		err := fr.InsertSignalOrder(Motorola, start, length, val)
		if err != nil {
			return true // sawtooth left the frame: rejection is correct
		}
		got, err := fr.ExtractSignalOrder(Motorola, start, length)
		return err == nil && got == val
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestOrderHelpersIntelDelegate(t *testing.T) {
	var a, b Frame
	if err := a.InsertSignal(4, 8, 0x7E); err != nil {
		t.Fatal(err)
	}
	if err := b.InsertSignalOrder(Intel, 4, 8, 0x7E); err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("Intel order helper differs from InsertSignal")
	}
}

func TestParseByteOrder(t *testing.T) {
	cases := map[string]ByteOrder{
		"": Intel, "intel": Intel, "LE": Intel, "0": Intel,
		"motorola": Motorola, "BIG": Motorola, "be": Motorola, "1": Motorola,
	}
	for in, want := range cases {
		got, err := ParseByteOrder(in)
		if err != nil || got != want {
			t.Errorf("ParseByteOrder(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseByteOrder("middle"); err == nil {
		t.Error("bad byte order accepted")
	}
	if Intel.String() != "intel" || Motorola.String() != "motorola" {
		t.Error("ByteOrder.String() wrong")
	}
}

func TestTxGroupAndMonitorMotorola(t *testing.T) {
	var sched event.Scheduler
	bus := NewBus(&sched)
	db := NewDB()
	mon := NewMonitor()
	bus.Attach("dut", mon.Rx)
	stand := bus.Attach("stand", nil)
	g := NewTxGroup(stand, db, 0, &sched)
	if err := g.SetSignalOrder(Motorola, "M", 7, 12, 0x123); err != nil {
		t.Fatal(err)
	}
	sched.Advance(time.Millisecond)
	v, err := mon.SignalOrder(Motorola, db, "M", 7, 12)
	if err != nil || v != 0x123 {
		t.Errorf("motorola bus round trip = %#x, %v", v, err)
	}
}
