// Package workbooks carries the component-test workbooks for the
// additional ECU models — the reproduction of the paper's project status
// ("successfully applied to two ECUs of the next S-class" plus ongoing
// supplier projects). Like package paper, it is pure data.
package workbooks

// CentralLocking is the workbook for the central locking unit: lock and
// unlock over CAN, auto-lock above 8 km/h, crash unlock, motor pulse
// timing — the requirement set of ecu.CentralLocking.
const CentralLocking = `# Central locking component test
== SignalDefinition ==
signal;direction;class;pin;pin return;message;startbit;length;init;description
CL_RQ;in;can;;;CL_CMD;0;2;NoRq;lock request (0 none, 1 lock, 2 unlock)
V_SPEED;in;can;;;VEH_DYN;0;8;V0;vehicle speed in km/h
CRASH_SW;in;digital;CRASH_SW;;;;;NoCrash;crash sensor contact (low-active)
LOCK_MOT;out;analog;LOCK_MOT;;;;;MotOff;lock motor driver
UNLOCK_MOT;out;analog;UNLOCK_MOT;;;;;MotOff;unlock motor driver
CL_LOCKED;out;can;;;CL_STAT;0;1;StatUnlocked;lock status signal

== StatusDefinition ==
status;method;attribut;var (x);nom;min;max;D 1;D 2;D 3
NoRq;put_can;data;;00B;;;;;
LockRq;put_can;data;;01B;;;;;
UnlockRq;put_can;data;;10B;;;;;
V0;put_can;data;;00000000B;;;;;
V5;put_can;data;;00000101B;;;;;
V10;put_can;data;;00001010B;;;;;
NoCrash;put_r;r;;INF;5000;INF;;;
Crash;put_r;r;;0;0;0,5;;;
MotOn;get_u;u;UBATT;1;0,7;1,1;;;
MotOff;get_u;u;UBATT;0;0;0,3;;;
StatLocked;get_can;data;;1B;;;;;
StatUnlocked;get_can;data;;0B;;;;;
Pulse500;get_t;t;;0,5;0,35;0,65;;;

== Test_LockUnlock ==
test step;dt;CL_RQ;LOCK_MOT;UNLOCK_MOT;CL_LOCKED;remarks
0;0,5;NoRq;MotOff;MotOff;StatUnlocked;initial state unlocked
1;0,3;LockRq;MotOn;;StatLocked;lock: motor pulse starts
2;1;NoRq;MotOff;;StatLocked;pulse over after 500 ms
3;0,3;UnlockRq;;MotOn;StatUnlocked;unlock: motor pulse starts
4;1;NoRq;MotOff;MotOff;StatUnlocked;pulse over

== Test_AutoLock ==
test step;dt;CL_RQ;V_SPEED;LOCK_MOT;CL_LOCKED;remarks
0;0,5;NoRq;V0;MotOff;StatUnlocked;standing
1;0,5;;V5;;StatUnlocked;below 8 km/h: no auto-lock
2;0,3;;V10;MotOn;StatLocked;8 km/h crossed: auto-lock
3;1;;;MotOff;StatLocked;pulse over, stays locked

== Test_Crash ==
test step;dt;CL_RQ;CRASH_SW;LOCK_MOT;UNLOCK_MOT;CL_LOCKED;remarks
0;0,5;LockRq;NoCrash;;;StatLocked;lock first
1;1;NoRq;;MotOff;;StatLocked;
2;0,3;;Crash;;MotOn;StatUnlocked;crash: immediate unlock
3;1;;;;MotOff;StatUnlocked;
4;1;LockRq;;MotOff;;StatUnlocked;locking inhibited during crash

== Test_PulseTiming ==
test step;dt;CL_RQ;LOCK_MOT;CL_LOCKED;remarks
0;0,5;NoRq;;StatUnlocked;idle
1;1;LockRq;Pulse500;StatLocked;motor pulse width 500 ms
`

// ExteriorLight is the workbook for the exterior light controller. It
// exercises the measurement methods the paper's example does not: the
// daytime running light is PWM-modulated and checked with get_f, and the
// rear fog relay contact is checked with get_r.
const ExteriorLight = `# Exterior light component test
== SignalDefinition ==
signal;direction;class;pin;pin return;message;startbit;length;init;description
LIGHT_SW;in;can;;;EXT_CMD;0;2;SwOff;light switch (0 off, 1 park, 2 low beam)
IGN;in;can;;;EXT_CMD;2;1;IgnOff;ignition state
NIGHT;in;can;;;EXT_CMD;3;1;Day;night bit from light sensor
FOG_SW;in;can;;;EXT_CMD;4;1;FogOff;rear fog switch
LB_OUT;out;analog;LB_OUT;;;;;LampOff;low beam driver
DRL_OUT;out;analog;DRL_OUT;;;;;LampOff;daytime running light (PWM)
REAR_FOG;out;analog;REAR_FOG;;;;;NoContact;rear fog relay contact

== StatusDefinition ==
status;method;attribut;var (x);nom;min;max;D 1;D 2;D 3
SwOff;put_can;data;;00B;;;;;
SwPark;put_can;data;;01B;;;;;
SwLow;put_can;data;;10B;;;;;
IgnOff;put_can;data;;0B;;;;;
IgnOn;put_can;data;;1B;;;;;
Day;put_can;data;;0B;;;;;
Night;put_can;data;;1B;;;;;
FogOff;put_can;data;;0B;;;;;
FogOn;put_can;data;;1B;;;;;
LampOn;get_u;u;UBATT;1;0,7;1,1;;;
LampOff;get_u;u;UBATT;0;0;0,3;;;
F25;get_f;f;;25;20;30;;;
Contact;get_r;r;;0,5;0;2;;;
NoContact;get_r;r;;INF;10000;INF;;;

== Test_BeamControl ==
test step;dt;LIGHT_SW;IGN;LB_OUT;remarks
0;0,5;SwOff;IgnOn;LampOff;all off
1;0,5;SwPark;;LampOff;park position: no low beam
2;0,5;SwLow;;LampOn;low beam on
3;0,5;SwOff;;LampOff;off again
4;0,5;SwLow;IgnOff;LampOff;no beam without ignition at day

== Test_DRL ==
test step;dt;LIGHT_SW;IGN;NIGHT;DRL_OUT;remarks
0;0,5;SwOff;IgnOff;Day;LampOff;parked: DRL off
1;2;;IgnOn;;F25;ignition on at day: 25 Hz PWM
2;1;;;Night;LampOff;night: DRL off
3;2;;;Day;F25;day again: PWM returns
4;1;SwLow;;;LampOff;low beam overrides DRL

== Test_FollowMeHome ==
test step;dt;LIGHT_SW;IGN;NIGHT;LB_OUT;remarks
0;0,5;SwLow;IgnOn;Night;LampOn;driving at night
1;0,5;SwOff;IgnOff;;LampOn;ignition off: follow-me-home holds
2;25;;;;LampOn;still lit before 30 s
3;10;;;;LampOff;off after 30 s

== Test_RearFog ==
test step;dt;LIGHT_SW;IGN;FOG_SW;REAR_FOG;remarks
0;0,5;SwLow;IgnOn;FogOff;NoContact;beam on, fog off
1;0,5;;;FogOn;Contact;fog switch: relay closes
2;0,5;;;FogOff;NoContact;fog off again
3;0,5;SwOff;;FogOn;NoContact;no fog without low beam
`

// WindowLifter is the workbook for the window lifter ECU: manual
// movement, the both-switches interlock and the 4 s travel limit.
const WindowLifter = `# Window lifter component test
== SignalDefinition ==
signal;direction;class;pin;pin return;message;startbit;length;init;description
SW_UP;in;digital;SW_UP;;;;;Released;up switch (low-active)
SW_DOWN;in;digital;SW_DOWN;;;;;Released;down switch (low-active)
MOT_UP;out;analog;MOT_UP;;;;;MotOff;up motor driver
MOT_DOWN;out;analog;MOT_DOWN;;;;;MotOff;down motor driver

== StatusDefinition ==
status;method;attribut;var (x);nom;min;max;D 1;D 2;D 3
Pressed;put_r;r;;0;0;0,5;;;
Released;put_r;r;;INF;5000;INF;;;
MotOn;get_u;u;UBATT;1;0,7;1,1;;;
MotOff;get_u;u;UBATT;0;0;0,3;;;

== Test_ManualMove ==
test step;dt;SW_UP;SW_DOWN;MOT_UP;MOT_DOWN;remarks
0;0,5;Released;Released;MotOff;MotOff;idle
1;1;Pressed;;MotOn;MotOff;up drives while pressed
2;0,5;Released;;MotOff;;release stops the motor
3;1;;Pressed;MotOff;MotOn;down drives
4;0,5;;Released;;MotOff;

== Test_Interlock ==
test step;dt;SW_UP;SW_DOWN;MOT_UP;MOT_DOWN;remarks
0;0,5;Released;Released;MotOff;MotOff;idle
1;1;Pressed;Pressed;MotOff;MotOff;both pressed: interlock stops all

== Test_TravelLimit ==
test step;dt;SW_UP;SW_DOWN;MOT_UP;MOT_DOWN;remarks
0;0,5;Released;Released;MotOff;MotOff;idle
1;3;Pressed;;MotOn;;within the 4 s travel window
2;3;;;MotOff;;end stop reached: motor off
`
