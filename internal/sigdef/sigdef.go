// Package sigdef implements the signal definition sheet of the paper's
// tool chain: "In the signal definition sheet all input and output signals
// of the device under test (DUT) are defined as well as the status of
// these signals before starting the test itself."
//
// A signal has a direction (seen from the DUT: "in" signals are stimulated
// by the test stand, "out" signals are measured), a class (electrical pin
// vs CAN bus signal), the physical pin or CAN packing information, and the
// initial status applied before step 0.
package sigdef

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/canbus"
	"repro/internal/method"
	"repro/internal/sheet"
	"repro/internal/status"
)

// Direction of a signal, seen from the DUT.
type Direction int

const (
	// In signals are DUT inputs: the test stand applies stimuli to them.
	In Direction = iota
	// Out signals are DUT outputs: the test stand measures them.
	Out
)

// String implements fmt.Stringer.
func (d Direction) String() string {
	if d == In {
		return "in"
	}
	return "out"
}

// ParseDirection parses the direction column.
func ParseDirection(s string) (Direction, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "in", "input", "i":
		return In, nil
	case "out", "output", "o":
		return Out, nil
	}
	return In, fmt.Errorf("sigdef: unknown direction %q", s)
}

// Class of a signal: how it physically reaches the DUT.
type Class int

const (
	// Analog signals live on an electrical pin with continuous levels.
	Analog Class = iota
	// Digital signals live on an electrical pin with two levels; for
	// routing and measurement they behave like analog pins.
	Digital
	// CANSignal values travel inside CAN frames.
	CANSignal
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case Analog:
		return "analog"
	case Digital:
		return "digital"
	case CANSignal:
		return "can"
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// ParseClass parses the class column.
func ParseClass(s string) (Class, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "analog", "a":
		return Analog, nil
	case "digital", "d":
		return Digital, nil
	case "can", "bus":
		return CANSignal, nil
	}
	return Analog, fmt.Errorf("sigdef: unknown class %q", s)
}

// Electrical reports whether the class lives on a physical pin.
func (c Class) Electrical() bool { return c == Analog || c == Digital }

// MethodClass maps the signal class onto the method package's taxonomy.
func (c Class) MethodClass() method.SignalClass {
	if c == CANSignal {
		return method.CAN
	}
	return method.Electrical
}

// Signal is one row of the signal definition sheet.
type Signal struct {
	Name      string
	Direction Direction
	Class     Class

	// Pin is the DUT connector pin for electrical signals (e.g.
	// "INT_ILL_F"). Electrical signals may name a second pin in PinRet
	// (the return line, e.g. "INT_ILL_R"); measurements are taken between
	// Pin and PinRet, or against ground when PinRet is empty.
	Pin    string
	PinRet string

	// Message/StartBit/Length/ByteOrder describe the frame packing of CAN
	// signals. ByteOrder defaults to Intel (little-endian); Motorola
	// (DBC big-endian) is supported for DUTs specified that way.
	Message   string
	StartBit  int
	Length    int
	ByteOrder canbus.ByteOrder

	// Init is the status applied to the signal before step 0.
	Init string

	// Doc is the free-text description column.
	Doc string

	// Row is the 1-based sheet row the signal was parsed from and Line
	// the 1-based source line of the workbook file (0 when the signal
	// was built programmatically). The static analyzers use them to
	// anchor findings.
	Row  int
	Line int
}

// Pins returns the electrical pins the signal touches (0, 1 or 2 names).
func (s *Signal) Pins() []string {
	if !s.Class.Electrical() {
		return nil
	}
	if s.PinRet != "" {
		return []string{s.Pin, s.PinRet}
	}
	return []string{s.Pin}
}

// List is a parsed signal definition sheet.
type List struct {
	byName map[string]*Signal
	order  []string

	// SheetName is the name of the sheet the list was parsed from
	// ("" for programmatically built lists).
	SheetName string
}

// NewList returns an empty signal list.
func NewList() *List { return &List{byName: map[string]*Signal{}} }

// Add validates the signal and inserts it.
func (l *List) Add(s *Signal) error {
	name := strings.TrimSpace(s.Name)
	if name == "" {
		return fmt.Errorf("sigdef: signal without name")
	}
	key := strings.ToLower(name)
	if _, dup := l.byName[key]; dup {
		return fmt.Errorf("sigdef: duplicate signal %q", name)
	}
	s.Name = name
	switch {
	case s.Class.Electrical() && strings.TrimSpace(s.Pin) == "":
		return fmt.Errorf("sigdef: electrical signal %q has no pin", name)
	case s.Class == CANSignal:
		if strings.TrimSpace(s.Message) == "" {
			return fmt.Errorf("sigdef: CAN signal %q has no message", name)
		}
		if s.Length <= 0 || s.Length > 64 {
			return fmt.Errorf("sigdef: CAN signal %q has invalid length %d", name, s.Length)
		}
		if err := canbus.CheckSignalRange(s.ByteOrder, s.StartBit, s.Length); err != nil {
			return fmt.Errorf("sigdef: CAN signal %q: %v", name, err)
		}
	}
	l.byName[key] = s
	l.order = append(l.order, name)
	return nil
}

// Lookup finds a signal by name (case-insensitive).
func (l *List) Lookup(name string) (*Signal, bool) {
	s, ok := l.byName[strings.ToLower(strings.TrimSpace(name))]
	return s, ok
}

// Names returns the signal names in sheet order.
func (l *List) Names() []string {
	out := make([]string, len(l.order))
	copy(out, l.order)
	return out
}

// Signals returns the signals in sheet order.
func (l *List) Signals() []*Signal {
	out := make([]*Signal, 0, len(l.order))
	for _, n := range l.order {
		out = append(out, l.byName[strings.ToLower(n)])
	}
	return out
}

// Len returns the number of signals.
func (l *List) Len() int { return len(l.order) }

// Inputs returns the DUT input signals in sheet order.
func (l *List) Inputs() []*Signal { return l.filter(In) }

// Outputs returns the DUT output signals in sheet order.
func (l *List) Outputs() []*Signal { return l.filter(Out) }

func (l *List) filter(d Direction) []*Signal {
	var out []*Signal
	for _, s := range l.Signals() {
		if s.Direction == d {
			out = append(out, s)
		}
	}
	return out
}

// ValidateAgainst cross-checks the list against a status table: every
// initial status must exist, and its method must fit the signal's class
// and direction (stimulus methods on inputs, measurement methods on
// outputs, CAN methods on CAN signals).
func (l *List) ValidateAgainst(tbl *status.Table) error {
	for _, s := range l.Signals() {
		if strings.TrimSpace(s.Init) == "" {
			continue
		}
		if err := CheckAssignment(s, s.Init, tbl); err != nil {
			return fmt.Errorf("sigdef: initial status of %q: %v", s.Name, err)
		}
	}
	return nil
}

// CheckAssignment verifies that assigning the named status to the signal
// is legal: the status exists, its method's class matches the signal
// class, and the method direction matches the signal direction.
func CheckAssignment(sig *Signal, statusName string, tbl *status.Table) error {
	st, ok := tbl.Lookup(statusName)
	if !ok {
		return fmt.Errorf("unknown status %q", statusName)
	}
	d := st.Desc
	if d.Class != method.AnyClass && d.Class != sig.Class.MethodClass() {
		return fmt.Errorf("status %q uses %s method %s, but signal %q is %s",
			st.Name, d.Class, d.Name, sig.Name, sig.Class)
	}
	switch {
	case d.IsStimulus() && sig.Direction != In:
		return fmt.Errorf("status %q applies stimulus %s, but signal %q is a DUT output",
			st.Name, d.Name, sig.Name)
	case d.IsMeasure() && sig.Direction != Out:
		return fmt.Errorf("status %q measures with %s, but signal %q is a DUT input",
			st.Name, d.Name, sig.Name)
	}
	return nil
}

// ------------------------------------------------------------- sheet I/O --

var headerAliases = map[string][]string{
	"signal":    {"signal", "name"},
	"direction": {"direction", "dir"},
	"class":     {"class", "type"},
	"pin":       {"pin"},
	"pinret":    {"pin return", "pin_ret", "return", "pin2"},
	"message":   {"message", "msg"},
	"startbit":  {"startbit", "start bit", "start"},
	"length":    {"length", "len", "bits"},
	"order":     {"order", "byteorder", "byte order"},
	"init":      {"init", "initial", "init status"},
	"doc":       {"description", "doc", "remarks"},
}

func findColumn(s *sheet.Sheet, key string) int {
	for _, alias := range headerAliases[key] {
		if i := s.HeaderIndex(alias); i >= 0 {
			return i
		}
	}
	return -1
}

// ParseSheet reads a signal definition sheet (first row = headers).
func ParseSheet(s *sheet.Sheet) (*List, error) {
	if s == nil {
		return nil, fmt.Errorf("sigdef: nil sheet")
	}
	cols := map[string]int{}
	for key := range headerAliases {
		cols[key] = findColumn(s, key)
	}
	for _, required := range []string{"signal", "direction", "class"} {
		if cols[required] < 0 {
			return nil, fmt.Errorf("sigdef: sheet %q lacks a %q column", s.Name, required)
		}
	}
	l := NewList()
	l.SheetName = s.Name
	for r := 1; r < s.NumRows(); r++ {
		if s.IsEmptyRow(r) {
			continue
		}
		get := func(key string) string {
			if cols[key] < 0 {
				return ""
			}
			return strings.TrimSpace(s.At(r, cols[key]))
		}
		dir, err := ParseDirection(get("direction"))
		if err != nil {
			return nil, fmt.Errorf("sigdef: sheet %q row %d: %v", s.Name, r+1, err)
		}
		cls, err := ParseClass(get("class"))
		if err != nil {
			return nil, fmt.Errorf("sigdef: sheet %q row %d: %v", s.Name, r+1, err)
		}
		sig := &Signal{
			Name:      get("signal"),
			Direction: dir,
			Class:     cls,
			Row:       r + 1,
			Line:      s.RowLine(r),
			Pin:       get("pin"),
			PinRet:    get("pinret"),
			Message:   get("message"),
			Init:      get("init"),
			Doc:       get("doc"),
		}
		if cls == CANSignal {
			sig.StartBit, err = parseIntCell(get("startbit"), 0)
			if err != nil {
				return nil, fmt.Errorf("sigdef: sheet %q row %d: startbit: %v", s.Name, r+1, err)
			}
			sig.Length, err = parseIntCell(get("length"), 1)
			if err != nil {
				return nil, fmt.Errorf("sigdef: sheet %q row %d: length: %v", s.Name, r+1, err)
			}
			sig.ByteOrder, err = canbus.ParseByteOrder(get("order"))
			if err != nil {
				return nil, fmt.Errorf("sigdef: sheet %q row %d: %v", s.Name, r+1, err)
			}
		}
		if err := l.Add(sig); err != nil {
			return nil, fmt.Errorf("sigdef: sheet %q row %d: %v", s.Name, r+1, err)
		}
	}
	if l.Len() == 0 {
		return nil, fmt.Errorf("sigdef: sheet %q contains no signals", s.Name)
	}
	return l, nil
}

func parseIntCell(c string, def int) (int, error) {
	if c == "" {
		return def, nil
	}
	n, err := strconv.Atoi(c)
	if err != nil {
		return 0, fmt.Errorf("malformed integer %q", c)
	}
	return n, nil
}

// ToSheet re-emits the list as a signal definition sheet.
func (l *List) ToSheet(name string) *sheet.Sheet {
	s := sheet.NewSheet(name)
	s.AppendRow("signal", "direction", "class", "pin", "pin return",
		"message", "startbit", "length", "order", "init", "description")
	for _, sig := range l.Signals() {
		start, length, order := "", "", ""
		if sig.Class == CANSignal {
			start = strconv.Itoa(sig.StartBit)
			length = strconv.Itoa(sig.Length)
			order = sig.ByteOrder.String()
		}
		s.AppendRow(sig.Name, sig.Direction.String(), sig.Class.String(),
			sig.Pin, sig.PinRet, sig.Message, start, length, order, sig.Init, sig.Doc)
	}
	return s
}

// AllPins returns the sorted-by-first-appearance set of electrical pins
// referenced by the list — the DUT side of the connection matrix.
func (l *List) AllPins() []string {
	seen := map[string]bool{}
	var out []string
	for _, sig := range l.Signals() {
		for _, p := range sig.Pins() {
			if p != "" && !seen[p] {
				seen[p] = true
				out = append(out, p)
			}
		}
	}
	return out
}
