package sigdef

import (
	"strings"
	"testing"

	"repro/internal/canbus"
	"repro/internal/method"
	"repro/internal/sheet"
	"repro/internal/status"
)

// paperSignalSheet is the signal definition for the paper's interior
// illumination example: CAN inputs IGN_ST and NIGHT, door switches DS_FL
// … DS_RR wired to pins, and the measured lamp output INT_ILL between
// pins INT_ILL_F and INT_ILL_R.
const paperSignalSheet = `== SignalDefinition ==
signal;direction;class;pin;pin return;message;startbit;length;init;description
IGN_ST;in;can;;;BCM_STAT;0;4;Off;ignition status
NIGHT;in;can;;;BCM_STAT;4;1;0;night bit from light sensor
DS_FL;in;digital;DS_FL;;;;;Closed;door switch front left
DS_FR;in;digital;DS_FR;;;;;Closed;door switch front right
DS_RL;in;digital;DS_RL;;;;;Closed;door switch rear left
DS_RR;in;digital;DS_RR;;;;;Closed;door switch rear right
INT_ILL;out;analog;INT_ILL_F;INT_ILL_R;;;;Lo;interior illumination
`

const paperStatusSheet = `== StatusDefinition ==
status;method;attribut;var (x);nom;min;max;D 1;D 2;D 3
Off;put_can;data;;0001B;;;;;
Open;put_r;r;;0;0;0,5;2;;
Closed;put_r;r;;INF;5000;INF;5000;;
0;put_can;data;;0B;;;;;
1;put_can;data;;1B;;;;;
Lo;get_u;u;UBATT;0;0;0,3;;;
Ho;get_u;u;UBATT;1;0,7;1,1;;;
`

func paperList(t *testing.T) *List {
	t.Helper()
	wb, err := sheet.ReadWorkbookString(paperSignalSheet)
	if err != nil {
		t.Fatal(err)
	}
	l, err := ParseSheet(wb.Sheet("SignalDefinition"))
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func paperStatuses(t *testing.T) *status.Table {
	t.Helper()
	wb, err := sheet.ReadWorkbookString(paperStatusSheet)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := status.ParseSheet(wb.Sheet("StatusDefinition"), method.Builtin())
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestParsePaperSignals(t *testing.T) {
	l := paperList(t)
	if l.Len() != 7 {
		t.Fatalf("Len = %d, want 7", l.Len())
	}
	ign, ok := l.Lookup("IGN_ST")
	if !ok || ign.Class != CANSignal || ign.Direction != In {
		t.Errorf("IGN_ST = %+v", ign)
	}
	if ign.Message != "BCM_STAT" || ign.StartBit != 0 || ign.Length != 4 {
		t.Errorf("IGN_ST CAN packing = %+v", ign)
	}
	ill, _ := l.Lookup("int_ill") // case-insensitive
	if ill == nil || ill.Direction != Out || ill.Pin != "INT_ILL_F" || ill.PinRet != "INT_ILL_R" {
		t.Errorf("INT_ILL = %+v", ill)
	}
}

func TestPins(t *testing.T) {
	l := paperList(t)
	ill, _ := l.Lookup("INT_ILL")
	p := ill.Pins()
	if len(p) != 2 || p[0] != "INT_ILL_F" || p[1] != "INT_ILL_R" {
		t.Errorf("INT_ILL pins = %v", p)
	}
	ds, _ := l.Lookup("DS_FL")
	if p := ds.Pins(); len(p) != 1 || p[0] != "DS_FL" {
		t.Errorf("DS_FL pins = %v", p)
	}
	can, _ := l.Lookup("NIGHT")
	if p := can.Pins(); p != nil {
		t.Errorf("CAN signal pins = %v, want nil", p)
	}
}

func TestAllPins(t *testing.T) {
	l := paperList(t)
	pins := l.AllPins()
	// The six pins of the paper's connection matrix (Table 4).
	want := []string{"DS_FL", "DS_FR", "DS_RL", "DS_RR", "INT_ILL_F", "INT_ILL_R"}
	if len(pins) != len(want) {
		t.Fatalf("AllPins = %v", pins)
	}
	set := map[string]bool{}
	for _, p := range pins {
		set[p] = true
	}
	for _, w := range want {
		if !set[w] {
			t.Errorf("AllPins lacks %q: %v", w, pins)
		}
	}
}

func TestInputsOutputs(t *testing.T) {
	l := paperList(t)
	if got := len(l.Inputs()); got != 6 {
		t.Errorf("Inputs = %d, want 6", got)
	}
	out := l.Outputs()
	if len(out) != 1 || out[0].Name != "INT_ILL" {
		t.Errorf("Outputs = %v", out)
	}
}

func TestValidateAgainstPaperStatuses(t *testing.T) {
	l := paperList(t)
	if err := l.ValidateAgainst(paperStatuses(t)); err != nil {
		t.Errorf("ValidateAgainst: %v", err)
	}
}

func TestCheckAssignmentDirection(t *testing.T) {
	l := paperList(t)
	tbl := paperStatuses(t)
	ill, _ := l.Lookup("INT_ILL")
	// Applying a stimulus status to an output must fail.
	if err := CheckAssignment(ill, "Open", tbl); err == nil {
		t.Error("stimulus on DUT output accepted")
	}
	// Measuring an input must fail.
	ds, _ := l.Lookup("DS_FL")
	if err := CheckAssignment(ds, "Ho", tbl); err == nil {
		t.Error("measurement on DUT input accepted")
	}
	// Correct usage passes.
	if err := CheckAssignment(ill, "Ho", tbl); err != nil {
		t.Errorf("Ho on INT_ILL rejected: %v", err)
	}
	if err := CheckAssignment(ds, "Open", tbl); err != nil {
		t.Errorf("Open on DS_FL rejected: %v", err)
	}
}

func TestCheckAssignmentClass(t *testing.T) {
	l := paperList(t)
	tbl := paperStatuses(t)
	// CAN status on an electrical signal must fail.
	ds, _ := l.Lookup("DS_FL")
	if err := CheckAssignment(ds, "Off", tbl); err == nil {
		t.Error("CAN status on electrical signal accepted")
	}
	// Electrical status on a CAN signal must fail.
	night, _ := l.Lookup("NIGHT")
	if err := CheckAssignment(night, "Open", tbl); err == nil {
		t.Error("electrical status on CAN signal accepted")
	}
	// Unknown status.
	if err := CheckAssignment(ds, "Sideways", tbl); err == nil ||
		!strings.Contains(err.Error(), "unknown status") {
		t.Errorf("unknown status error = %v", err)
	}
}

func TestValidateAgainstDetectsBadInit(t *testing.T) {
	wb, _ := sheet.ReadWorkbookString(`== S ==
signal;direction;class;pin;init
DS_FL;in;digital;DS_FL;Ho
`)
	l, err := ParseSheet(wb.Sheet("S"))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.ValidateAgainst(paperStatuses(t)); err == nil {
		t.Error("measurement status as init of an input accepted")
	}
}

func TestAddErrors(t *testing.T) {
	cases := []struct {
		name string
		sig  *Signal
		want string
	}{
		{"no name", &Signal{}, "without name"},
		{"no pin", &Signal{Name: "X", Class: Analog}, "no pin"},
		{"no message", &Signal{Name: "X", Class: CANSignal, Length: 4}, "no message"},
		{"bad length", &Signal{Name: "X", Class: CANSignal, Message: "M", Length: 0}, "invalid length"},
		{"bits overflow", &Signal{Name: "X", Class: CANSignal, Message: "M", StartBit: 62, Length: 4}, "invalid bit range"},
	}
	for _, c := range cases {
		l := NewList()
		err := l.Add(c.sig)
		if err == nil {
			t.Errorf("%s: Add succeeded", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestDuplicateSignal(t *testing.T) {
	l := NewList()
	if err := l.Add(&Signal{Name: "A", Class: Digital, Pin: "A"}); err != nil {
		t.Fatal(err)
	}
	if err := l.Add(&Signal{Name: "a", Class: Digital, Pin: "A2"}); err == nil {
		t.Error("duplicate signal accepted")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"== S ==\nfoo;bar\n", // missing columns
		"== S ==\nsignal;direction;class\nX;sideways;analog\n",                            // bad direction
		"== S ==\nsignal;direction;class\nX;in;quantum\n",                                 // bad class
		"== S ==\nsignal;direction;class\n",                                               // empty table
		"== S ==\nsignal;direction;class;pin;message;startbit;length\nX;in;can;;M;zz;4\n", // bad int
	}
	for _, in := range bad {
		wb, err := sheet.ReadWorkbookString(in)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ParseSheet(wb.Sheet("S")); err == nil {
			t.Errorf("ParseSheet(%q) succeeded", in)
		}
	}
	if _, err := ParseSheet(nil); err == nil {
		t.Error("ParseSheet(nil) succeeded")
	}
}

func TestToSheetRoundTrip(t *testing.T) {
	l := paperList(t)
	out := l.ToSheet("SignalDefinition")
	l2, err := ParseSheet(out)
	if err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	if l2.Len() != l.Len() {
		t.Fatalf("round-trip length %d != %d", l2.Len(), l.Len())
	}
	for _, name := range l.Names() {
		a, _ := l.Lookup(name)
		b, ok := l2.Lookup(name)
		if !ok {
			t.Fatalf("signal %q lost", name)
		}
		if a.Direction != b.Direction || a.Class != b.Class || a.Pin != b.Pin ||
			a.PinRet != b.PinRet || a.Message != b.Message ||
			a.StartBit != b.StartBit || a.Length != b.Length || a.Init != b.Init {
			t.Errorf("signal %q changed: %+v vs %+v", name, a, b)
		}
	}
}

func TestStringers(t *testing.T) {
	if In.String() != "in" || Out.String() != "out" {
		t.Error("Direction.String() wrong")
	}
	if Analog.String() != "analog" || Digital.String() != "digital" || CANSignal.String() != "can" {
		t.Error("Class.String() wrong")
	}
	if Class(9).String() == "" {
		t.Error("unknown Class.String() empty")
	}
}

func TestMethodClass(t *testing.T) {
	if Analog.MethodClass() != method.Electrical || Digital.MethodClass() != method.Electrical {
		t.Error("electrical MethodClass wrong")
	}
	if CANSignal.MethodClass() != method.CAN {
		t.Error("CAN MethodClass wrong")
	}
	if !Analog.Electrical() || !Digital.Electrical() || CANSignal.Electrical() {
		t.Error("Electrical() wrong")
	}
}

func TestMotorolaByteOrderColumn(t *testing.T) {
	wb, _ := sheet.ReadWorkbookString(`== S ==
signal;direction;class;pin;message;startbit;length;order
TQ;in;can;;ENG_CMD;7;12;motorola
V;in;can;;ENG_CMD;32;8;
`)
	l, err := ParseSheet(wb.Sheet("S"))
	if err != nil {
		t.Fatal(err)
	}
	tq, _ := l.Lookup("TQ")
	if tq.ByteOrder != canbus.Motorola {
		t.Errorf("TQ byte order = %v", tq.ByteOrder)
	}
	v, _ := l.Lookup("V")
	if v.ByteOrder != canbus.Intel {
		t.Errorf("V byte order = %v (default must be intel)", v.ByteOrder)
	}
	// Round trip through ToSheet.
	l2, err := ParseSheet(l.ToSheet("S"))
	if err != nil {
		t.Fatal(err)
	}
	tq2, _ := l2.Lookup("TQ")
	if tq2.ByteOrder != canbus.Motorola {
		t.Error("byte order lost in sheet round trip")
	}
	// A Motorola signal whose sawtooth leaves the frame is rejected;
	// note start 62 length 4 is VALID in Motorola (bits 62,61,60,59)
	// even though it is invalid in Intel.
	lOK := NewList()
	if err := lOK.Add(&Signal{Name: "A", Class: CANSignal, Message: "M",
		StartBit: 62, Length: 4, ByteOrder: canbus.Motorola}); err != nil {
		t.Errorf("valid motorola signal rejected: %v", err)
	}
	lBad := NewList()
	if err := lBad.Add(&Signal{Name: "B", Class: CANSignal, Message: "M",
		StartBit: 0, Length: 64, ByteOrder: canbus.Motorola}); err == nil {
		t.Error("out-of-frame motorola signal accepted")
	}
	// Bad order column.
	wb2, _ := sheet.ReadWorkbookString("== S ==\nsignal;direction;class;message;length;order\nX;in;can;M;4;middle\n")
	if _, err := ParseSheet(wb2.Sheet("S")); err == nil {
		t.Error("bad byte order accepted")
	}
}
