// Package version is the single source of the tool chain's identity
// string: the module version baked into the binary plus the Go
// toolchain it was built with. The CLI prints it (comptest version)
// and the distributed layer exchanges it in the worker↔coordinator
// handshake, so a mixed-version fleet is visible in /v1/workers
// instead of failing mysteriously mid-campaign.
package version

import (
	"fmt"
	"runtime"
	"runtime/debug"
)

// Protocol is the coordinator↔worker wire-protocol revision. A worker
// whose Protocol differs from the coordinator's is rejected at
// registration — shard specs and merge semantics are only defined
// within one revision.
const Protocol = 1

// Module returns the module version stamped into the binary by the Go
// toolchain, or "(devel)" for test and development builds.
func Module() string {
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" {
		return bi.Main.Version
	}
	return "(devel)"
}

// String renders the full identity line: module version, Go toolchain
// and platform. This exact string travels in the registration
// handshake and is what `comptest version` prints.
func String() string {
	return fmt.Sprintf("comptest %s %s %s/%s", Module(), runtime.Version(), runtime.GOOS, runtime.GOARCH)
}
