// Package sheet is the spreadsheet substrate of the tool chain.
//
// The paper uses Microsoft Excel as the authoring front end because "usage
// of the tool chain [must be open] to all involved engineers without
// specific training". Excel itself is proprietary, so this reproduction
// substitutes a plain-text workbook format that preserves exactly what the
// tool chain needs: named sheets containing a rectangular grid of string
// cells. Every sheet printed in the paper is reproduced verbatim in this
// format under testdata/.
//
// Workbook file format ("CSW", comma/semicolon-separated workbook):
//
//	# comment lines start with '#'
//	== SheetName ==
//	cell;cell;cell
//	cell;;cell          <- empty cells allowed
//
// Cells are separated by ';' (the separator Excel uses for CSV export in
// German locales, which matters because the paper's numbers use decimal
// commas). Leading/trailing cell whitespace is trimmed. A cell may be
// quoted with double quotes to protect ';', '#' or leading/trailing
// blanks; a doubled quote inside a quoted cell is a literal quote.
package sheet

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strings"
)

// Sheet is one named grid of cells. Rows may have differing lengths;
// missing trailing cells read as "".
type Sheet struct {
	Name string
	Rows [][]string

	// lines maps row index to the 1-based line number of the source
	// stream the row was read from. Only ReadWorkbook fills it;
	// programmatically built sheets have no source lines. The static
	// analyzers (internal/lint) use it to anchor findings at real file
	// positions — SARIF viewers and editors address .csw files by line.
	lines []int
}

// Workbook is an ordered collection of sheets with unique names.
type Workbook struct {
	Sheets []*Sheet
}

// NewSheet returns an empty sheet with the given name.
func NewSheet(name string) *Sheet { return &Sheet{Name: name} }

// At returns the cell at (row, col), or "" when the coordinate lies
// outside the grid. Coordinates are zero-based.
func (s *Sheet) At(row, col int) string {
	if row < 0 || row >= len(s.Rows) {
		return ""
	}
	r := s.Rows[row]
	if col < 0 || col >= len(r) {
		return ""
	}
	return r[col]
}

// Set grows the grid as needed and stores value at (row, col).
func (s *Sheet) Set(row, col int, value string) {
	for len(s.Rows) <= row {
		s.Rows = append(s.Rows, nil)
	}
	for len(s.Rows[row]) <= col {
		s.Rows[row] = append(s.Rows[row], "")
	}
	s.Rows[row][col] = value
}

// AppendRow adds a row of cells at the bottom of the sheet.
func (s *Sheet) AppendRow(cells ...string) {
	s.Rows = append(s.Rows, cells)
}

// NumRows returns the number of rows.
func (s *Sheet) NumRows() int { return len(s.Rows) }

// RowLine returns the 1-based source line row i was read from, or 0
// when the sheet was not read from a stream (or the row is synthetic).
func (s *Sheet) RowLine(i int) int {
	if i < 0 || i >= len(s.lines) {
		return 0
	}
	return s.lines[i]
}

// SetRowLine records the source line of row i (used by ReadWorkbook;
// exported for tools that splice sheets while preserving positions).
func (s *Sheet) SetRowLine(i, line int) {
	if i < 0 {
		return
	}
	for len(s.lines) <= i {
		s.lines = append(s.lines, 0)
	}
	s.lines[i] = line
}

// NumCols returns the width of the widest row.
func (s *Sheet) NumCols() int {
	w := 0
	for _, r := range s.Rows {
		if len(r) > w {
			w = len(r)
		}
	}
	return w
}

// Row returns row i padded to the sheet width, never nil.
func (s *Sheet) Row(i int) []string {
	w := s.NumCols()
	out := make([]string, w)
	if i >= 0 && i < len(s.Rows) {
		copy(out, s.Rows[i])
	}
	return out
}

// IsEmptyRow reports whether every cell of row i is blank.
func (s *Sheet) IsEmptyRow(i int) bool {
	if i < 0 || i >= len(s.Rows) {
		return true
	}
	for _, c := range s.Rows[i] {
		if strings.TrimSpace(c) != "" {
			return false
		}
	}
	return true
}

// HeaderIndex scans row 0 for a cell equal (case-insensitively, after
// trimming) to name and returns its column, or -1.
func (s *Sheet) HeaderIndex(name string) int {
	if len(s.Rows) == 0 {
		return -1
	}
	for i, c := range s.Rows[0] {
		if strings.EqualFold(strings.TrimSpace(c), name) {
			return i
		}
	}
	return -1
}

// Sheet returns the sheet with the given name (case-insensitive), or nil.
func (w *Workbook) Sheet(name string) *Sheet {
	for _, s := range w.Sheets {
		if strings.EqualFold(s.Name, name) {
			return s
		}
	}
	return nil
}

// SheetsWithPrefix returns, in workbook order, all sheets whose name
// starts with the given prefix (case-insensitive). Test-definition sheets
// are conventionally named "Test_<name>".
func (w *Workbook) SheetsWithPrefix(prefix string) []*Sheet {
	var out []*Sheet
	for _, s := range w.Sheets {
		if len(s.Name) >= len(prefix) && strings.EqualFold(s.Name[:len(prefix)], prefix) {
			out = append(out, s)
		}
	}
	return out
}

// Add appends a sheet; it returns an error if the name is already taken.
func (w *Workbook) Add(s *Sheet) error {
	if s.Name == "" {
		return fmt.Errorf("sheet: cannot add sheet with empty name")
	}
	if w.Sheet(s.Name) != nil {
		return fmt.Errorf("sheet: duplicate sheet name %q", s.Name)
	}
	w.Sheets = append(w.Sheets, s)
	return nil
}

// ReadWorkbook parses a CSW stream.
func ReadWorkbook(r io.Reader) (*Workbook, error) {
	wb := &Workbook{}
	var cur *Sheet
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || strings.HasPrefix(trimmed, "#") {
			continue
		}
		if name, ok := sheetHeader(trimmed); ok {
			cur = NewSheet(name)
			if err := wb.Add(cur); err != nil {
				return nil, fmt.Errorf("line %d: %v", lineNo, err)
			}
			continue
		}
		if cur == nil {
			return nil, fmt.Errorf("sheet: line %d: cell data before any '== SheetName ==' header", lineNo)
		}
		cells, err := splitCells(line)
		if err != nil {
			return nil, fmt.Errorf("sheet: line %d: %v", lineNo, err)
		}
		cur.Rows = append(cur.Rows, cells)
		cur.SetRowLine(len(cur.Rows)-1, lineNo)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("sheet: read: %v", err)
	}
	return wb, nil
}

// ReadWorkbookFile opens and parses a CSW file.
func ReadWorkbookFile(path string) (*Workbook, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	wb, err := ReadWorkbook(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return wb, nil
}

// ReadWorkbookString parses a CSW document held in a string.
func ReadWorkbookString(s string) (*Workbook, error) {
	return ReadWorkbook(strings.NewReader(s))
}

// WriteWorkbook serialises the workbook in CSW form.
func WriteWorkbook(w io.Writer, wb *Workbook) error {
	bw := bufio.NewWriter(w)
	for i, s := range wb.Sheets {
		if i > 0 {
			if _, err := fmt.Fprintln(bw); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(bw, "== %s ==\n", s.Name); err != nil {
			return err
		}
		for _, row := range s.Rows {
			cells := make([]string, len(row))
			for j, c := range row {
				cells[j] = quoteCell(c)
			}
			if _, err := fmt.Fprintln(bw, strings.Join(cells, ";")); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// WorkbookString renders the workbook as a CSW string.
func WorkbookString(wb *Workbook) string {
	var b strings.Builder
	// strings.Builder writes never fail.
	_ = WriteWorkbook(&b, wb)
	return b.String()
}

func sheetHeader(line string) (string, bool) {
	if !strings.HasPrefix(line, "==") || !strings.HasSuffix(line, "==") || len(line) < 5 {
		return "", false
	}
	name := strings.TrimSpace(line[2 : len(line)-2])
	if name == "" {
		return "", false
	}
	return name, true
}

// splitCells splits a CSW data line on ';', honouring double quotes.
// Unquoted cells are whitespace-trimmed; quoted cells keep their content
// verbatim (that is the point of quoting).
func splitCells(line string) ([]string, error) {
	var cells []string
	var cur strings.Builder
	inQuote := false
	wasQuoted := false
	flush := func() {
		c := cur.String()
		if !wasQuoted {
			c = strings.TrimSpace(c)
		}
		cells = append(cells, c)
		cur.Reset()
		wasQuoted = false
	}
	i := 0
	for i < len(line) {
		c := line[i]
		switch {
		case inQuote:
			if c == '"' {
				if i+1 < len(line) && line[i+1] == '"' {
					cur.WriteByte('"')
					i += 2
					continue
				}
				inQuote = false
				i++
				continue
			}
			cur.WriteByte(c)
			i++
		case c == '"':
			inQuote = true
			wasQuoted = true
			i++
		case c == ';':
			flush()
			i++
		default:
			cur.WriteByte(c)
			i++
		}
	}
	if inQuote {
		return nil, fmt.Errorf("unterminated quote in %q", line)
	}
	flush()
	return cells, nil
}

func quoteCell(c string) string {
	if c == "" {
		return ""
	}
	needs := strings.ContainsAny(c, ";\"") ||
		c != strings.TrimSpace(c) ||
		strings.HasPrefix(c, "#")
	if !needs {
		return c
	}
	return `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
}
