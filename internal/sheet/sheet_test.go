package sheet

import (
	"strings"
	"testing"
	"testing/quick"
)

const sampleCSW = `
# example workbook
== Signals ==
signal;direction;class
IGN_ST;in;can
INT_ILL;out;analog

== Test_Light ==
test step;dt;IGN_ST;INT_ILL;remarks
0;0,5;Off;Lo;day: no interior
1;0,5;;Lo;
`

func mustRead(t *testing.T, s string) *Workbook {
	t.Helper()
	wb, err := ReadWorkbookString(s)
	if err != nil {
		t.Fatalf("ReadWorkbookString: %v", err)
	}
	return wb
}

func TestReadBasic(t *testing.T) {
	wb := mustRead(t, sampleCSW)
	if len(wb.Sheets) != 2 {
		t.Fatalf("got %d sheets, want 2", len(wb.Sheets))
	}
	sig := wb.Sheet("Signals")
	if sig == nil {
		t.Fatal("sheet Signals missing")
	}
	if sig.NumRows() != 3 {
		t.Errorf("Signals rows = %d, want 3", sig.NumRows())
	}
	if got := sig.At(1, 0); got != "IGN_ST" {
		t.Errorf("At(1,0) = %q", got)
	}
	if got := sig.At(2, 2); got != "analog" {
		t.Errorf("At(2,2) = %q", got)
	}
}

func TestSheetLookupCaseInsensitive(t *testing.T) {
	wb := mustRead(t, sampleCSW)
	if wb.Sheet("signals") == nil || wb.Sheet("SIGNALS") == nil {
		t.Error("case-insensitive sheet lookup failed")
	}
	if wb.Sheet("nope") != nil {
		t.Error("lookup of missing sheet returned non-nil")
	}
}

func TestSheetsWithPrefix(t *testing.T) {
	wb := mustRead(t, sampleCSW)
	tests := wb.SheetsWithPrefix("Test_")
	if len(tests) != 1 || tests[0].Name != "Test_Light" {
		t.Errorf("SheetsWithPrefix = %v", tests)
	}
	if got := wb.SheetsWithPrefix("zzz"); len(got) != 0 {
		t.Errorf("SheetsWithPrefix(zzz) = %v", got)
	}
}

func TestEmptyCells(t *testing.T) {
	wb := mustRead(t, sampleCSW)
	s := wb.Sheet("Test_Light")
	if got := s.At(2, 2); got != "" {
		t.Errorf("empty cell = %q, want empty", got)
	}
	// Out-of-range access is "".
	if s.At(99, 0) != "" || s.At(0, 99) != "" || s.At(-1, -1) != "" {
		t.Error("out-of-range At() must return empty string")
	}
}

func TestGermanDecimalSurvives(t *testing.T) {
	wb := mustRead(t, sampleCSW)
	if got := wb.Sheet("Test_Light").At(1, 1); got != "0,5" {
		t.Errorf("cell = %q, want 0,5 (decimal comma must survive)", got)
	}
}

func TestQuotedCells(t *testing.T) {
	wb := mustRead(t, `== S ==
"a;b";"say ""hi""";" padded ";#notcomment
`)
	s := wb.Sheet("S")
	if got := s.At(0, 0); got != "a;b" {
		t.Errorf("quoted cell 0 = %q", got)
	}
	if got := s.At(0, 1); got != `say "hi"` {
		t.Errorf("quoted cell 1 = %q", got)
	}
	if got := s.At(0, 2); got != " padded " {
		t.Errorf("quoted cell 2 = %q (padding must survive quoting)", got)
	}
	if got := s.At(0, 3); got != "#notcomment" {
		t.Errorf("cell 3 = %q", got)
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	wb := mustRead(t, "# top\n\n== A ==\n# inner comment\nx;y\n\nz\n")
	s := wb.Sheet("A")
	if s.NumRows() != 2 {
		t.Errorf("rows = %d, want 2 (comments/blanks skipped)", s.NumRows())
	}
}

func TestErrors(t *testing.T) {
	cases := []string{
		"x;y\n",                     // data before header
		"== A ==\nx\n== A ==\ny\n",  // duplicate sheet
		"== A ==\n\"unterminated\n", // quote error
	}
	for _, in := range cases {
		if _, err := ReadWorkbookString(in); err == nil {
			t.Errorf("ReadWorkbookString(%q) unexpectedly succeeded", in)
		}
	}
}

func TestHeaderVariants(t *testing.T) {
	// "====" is not a valid header; "== x ==" is.
	if _, err := ReadWorkbookString("====\nx\n"); err == nil {
		t.Error("'====' accepted as header")
	}
	wb := mustRead(t, "==  Spaced Name  ==\na\n")
	if wb.Sheet("Spaced Name") == nil {
		t.Error("spaced sheet name not trimmed correctly")
	}
}

func TestSetAndAt(t *testing.T) {
	s := NewSheet("X")
	s.Set(2, 3, "v")
	if got := s.At(2, 3); got != "v" {
		t.Errorf("Set/At = %q", got)
	}
	if s.NumRows() != 3 {
		t.Errorf("NumRows = %d, want 3", s.NumRows())
	}
	if s.NumCols() != 4 {
		t.Errorf("NumCols = %d, want 4", s.NumCols())
	}
	// Intermediate cells are empty.
	if s.At(0, 0) != "" || s.At(2, 0) != "" {
		t.Error("intermediate cells not empty")
	}
}

func TestAppendRowAndRow(t *testing.T) {
	s := NewSheet("X")
	s.AppendRow("a", "b")
	s.AppendRow("c")
	r := s.Row(1)
	if len(r) != 2 || r[0] != "c" || r[1] != "" {
		t.Errorf("Row(1) = %v", r)
	}
	if len(s.Row(99)) != 2 {
		t.Errorf("Row(99) should be padded empty row, got %v", s.Row(99))
	}
}

func TestIsEmptyRow(t *testing.T) {
	s := NewSheet("X")
	s.AppendRow("", "  ", "")
	s.AppendRow("", "x")
	if !s.IsEmptyRow(0) {
		t.Error("IsEmptyRow(0) = false")
	}
	if s.IsEmptyRow(1) {
		t.Error("IsEmptyRow(1) = true")
	}
	if !s.IsEmptyRow(99) {
		t.Error("IsEmptyRow(out of range) = false")
	}
}

func TestHeaderIndex(t *testing.T) {
	s := NewSheet("X")
	s.AppendRow("test step", "dt", "IGN_ST", "remarks")
	if got := s.HeaderIndex("DT"); got != 1 {
		t.Errorf("HeaderIndex(DT) = %d, want 1", got)
	}
	if got := s.HeaderIndex("missing"); got != -1 {
		t.Errorf("HeaderIndex(missing) = %d, want -1", got)
	}
	if got := NewSheet("Y").HeaderIndex("x"); got != -1 {
		t.Errorf("HeaderIndex on empty sheet = %d, want -1", got)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	wb := &Workbook{}
	s1 := NewSheet("One")
	s1.AppendRow("a", "b;c", `q"q`, " pad ")
	s1.AppendRow("", "0,5")
	s2 := NewSheet("Two")
	s2.AppendRow("#leading hash")
	if err := wb.Add(s1); err != nil {
		t.Fatal(err)
	}
	if err := wb.Add(s2); err != nil {
		t.Fatal(err)
	}
	out := WorkbookString(wb)
	back, err := ReadWorkbookString(out)
	if err != nil {
		t.Fatalf("round-trip read: %v\n%s", err, out)
	}
	if len(back.Sheets) != 2 {
		t.Fatalf("round-trip sheet count = %d", len(back.Sheets))
	}
	for si, orig := range wb.Sheets {
		got := back.Sheets[si]
		if got.Name != orig.Name {
			t.Errorf("sheet %d name %q != %q", si, got.Name, orig.Name)
		}
		for ri := range orig.Rows {
			for ci := range orig.Rows[ri] {
				if got.At(ri, ci) != orig.At(ri, ci) {
					t.Errorf("cell (%s,%d,%d) = %q, want %q",
						orig.Name, ri, ci, got.At(ri, ci), orig.At(ri, ci))
				}
			}
		}
	}
}

// Property-based round trip over arbitrary printable cell content.
func TestRoundTripProperty(t *testing.T) {
	sanitize := func(s string) string {
		// The CSW format is line-oriented; newlines inside cells are not
		// supported, so the generator strips them. Everything else must
		// survive.
		s = strings.Map(func(r rune) rune {
			if r == '\n' || r == '\r' {
				return ' '
			}
			return r
		}, s)
		return s
	}
	f := func(cells [][2]string) bool {
		wb := &Workbook{}
		s := NewSheet("P")
		for _, c := range cells {
			s.AppendRow(sanitize(c[0]), sanitize(c[1]))
		}
		if err := wb.Add(s); err != nil {
			return false
		}
		back, err := ReadWorkbookString(WorkbookString(wb))
		if err != nil {
			return false
		}
		bs := back.Sheet("P")
		if bs == nil {
			return len(cells) == 0
		}
		for i, c := range cells {
			// Unquoted cells trim whitespace; the writer quotes padded
			// cells, so content must match exactly.
			if bs.At(i, 0) != sanitize(c[0]) || bs.At(i, 1) != sanitize(c[1]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestAddErrors(t *testing.T) {
	wb := &Workbook{}
	if err := wb.Add(NewSheet("")); err == nil {
		t.Error("Add empty-name sheet succeeded")
	}
	if err := wb.Add(NewSheet("A")); err != nil {
		t.Fatal(err)
	}
	if err := wb.Add(NewSheet("a")); err == nil {
		t.Error("Add duplicate (case-insensitive) sheet succeeded")
	}
}
