// Package reuse quantifies the paper's headline claim: test definitions
// that are "independent from the test environment" can be reused across
// projects, suppliers and test stands. Given a set of generated scripts
// and a set of stand configurations it computes the can-run matrix (which
// script is executable on which stand, and why not) and the reuse
// percentage — the fraction of (script, stand) pairs that work without
// touching the test definition.
package reuse

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/method"
	"repro/internal/resource"
	"repro/internal/script"
)

// Cell is one entry of the can-run matrix.
type Cell struct {
	Script string
	Stand  string
	// Runnable is the static check: every method of the script is
	// offered by at least one resource of the stand.
	Runnable bool
	// Reason explains a false Runnable.
	Reason string
}

// Matrix is the complete cross-stand analysis.
type Matrix struct {
	Scripts []string
	Stands  []string
	Cells   []Cell
}

// StandInfo is the subset of a stand the analysis needs; it avoids a
// dependency on the heavier stand package.
type StandInfo struct {
	Name    string
	Catalog *resource.Catalog
}

// Analyze computes the can-run matrix.
func Analyze(scripts []*script.Script, stands []StandInfo, reg *method.Registry) (*Matrix, error) {
	if len(scripts) == 0 || len(stands) == 0 {
		return nil, fmt.Errorf("reuse: need at least one script and one stand")
	}
	m := &Matrix{}
	for _, sc := range scripts {
		m.Scripts = append(m.Scripts, sc.Name)
	}
	for _, st := range stands {
		m.Stands = append(m.Stands, st.Name)
	}
	for _, sc := range scripts {
		if err := script.Validate(sc, reg); err != nil {
			return nil, fmt.Errorf("reuse: %v", err)
		}
		for _, st := range stands {
			cell := Cell{Script: sc.Name, Stand: st.Name, Runnable: true}
			var missing []string
			for _, mm := range sc.UsedMethods() {
				d, ok := reg.Lookup(mm)
				if !ok {
					return nil, fmt.Errorf("reuse: unknown method %q in %q", mm, sc.Name)
				}
				if d.Kind == method.Control {
					continue
				}
				if len(st.Catalog.Candidates(mm)) == 0 {
					missing = append(missing, mm)
				}
			}
			if len(missing) > 0 {
				cell.Runnable = false
				sort.Strings(missing)
				cell.Reason = "missing methods: " + strings.Join(missing, ", ")
			}
			m.Cells = append(m.Cells, cell)
		}
	}
	return m, nil
}

// Cell returns the matrix cell for (script, stand).
func (m *Matrix) Cell(scriptName, standName string) (Cell, bool) {
	for _, c := range m.Cells {
		if strings.EqualFold(c.Script, scriptName) && strings.EqualFold(c.Stand, standName) {
			return c, true
		}
	}
	return Cell{}, false
}

// ReusePercent is the fraction of runnable (script, stand) pairs, in
// percent.
func (m *Matrix) ReusePercent() float64 {
	if len(m.Cells) == 0 {
		return 0
	}
	run := 0
	for _, c := range m.Cells {
		if c.Runnable {
			run++
		}
	}
	return 100 * float64(run) / float64(len(m.Cells))
}

// PerStand returns, for each stand, how many scripts it can run.
func (m *Matrix) PerStand() map[string]int {
	out := map[string]int{}
	for _, s := range m.Stands {
		out[s] = 0
	}
	for _, c := range m.Cells {
		if c.Runnable {
			out[c.Stand]++
		}
	}
	return out
}

// String renders the matrix as an aligned text table with ✓/✗ cells.
func (m *Matrix) String() string {
	var b strings.Builder
	nameW := len("script")
	for _, s := range m.Scripts {
		if len(s) > nameW {
			nameW = len(s)
		}
	}
	fmt.Fprintf(&b, "%-*s", nameW, "script")
	for _, st := range m.Stands {
		fmt.Fprintf(&b, "  %s", st)
	}
	b.WriteString("\n")
	for _, sc := range m.Scripts {
		fmt.Fprintf(&b, "%-*s", nameW, sc)
		for _, st := range m.Stands {
			c, _ := m.Cell(sc, st)
			mark := "yes"
			if !c.Runnable {
				mark = "NO"
			}
			fmt.Fprintf(&b, "  %-*s", len(st), mark)
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "reuse: %.1f%%\n", m.ReusePercent())
	for _, c := range m.Cells {
		if !c.Runnable {
			fmt.Fprintf(&b, "  %s on %s: %s\n", c.Script, c.Stand, c.Reason)
		}
	}
	return b.String()
}
