package reuse

import (
	"strings"
	"testing"

	"repro/internal/method"
	"repro/internal/resource"
	"repro/internal/script"
	"repro/internal/unit"
)

func testScript(name string, methods map[string]map[string]string) *script.Script {
	sc := &script.Script{Name: name, Version: script.Version,
		Decls: []*script.SignalDecl{
			{Name: "sig", Direction: "in", Class: "digital", Pin: "P1"},
			{Name: "out", Direction: "out", Class: "analog", Pin: "P2"},
		}}
	step := &script.Step{Nr: 0, Dt: 1}
	for m, attrs := range methods {
		name := "sig"
		if strings.HasPrefix(m, "get") {
			name = "out"
		}
		step.Signals = append(step.Signals, &script.SignalStmt{
			Name: name, Call: script.MethodCall{Method: m, Attrs: attrs}})
	}
	sc.Steps = []*script.Step{step}
	return sc
}

func catalogWith(t *testing.T, methods ...string) *resource.Catalog {
	t.Helper()
	cat := resource.NewCatalog()
	for i, m := range methods {
		r := &resource.Resource{ID: "R" + strings.Repeat("x", i+1),
			Caps: []resource.Capability{{Method: m, Range: resource.Unbounded(unit.None)}}}
		if strings.Contains(m, "can") {
			r.Kind = resource.CANAdapter
		}
		if err := cat.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	return cat
}

func TestAnalyzeBasic(t *testing.T) {
	reg := method.Builtin()
	scripts := []*script.Script{
		testScript("A", map[string]map[string]string{
			"put_r": {"r": "100"},
			"get_u": {"u_min": "0", "u_max": "1"},
		}),
		testScript("B", map[string]map[string]string{
			"put_pwm": {"f": "100", "duty": "50"},
		}),
	}
	stands := []StandInfo{
		{Name: "full", Catalog: catalogWith(t, "put_r", "get_u", "put_pwm")},
		{Name: "mini", Catalog: catalogWith(t, "put_r", "get_u")},
	}
	m, err := Analyze(scripts, stands, reg)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Cells) != 4 {
		t.Fatalf("cells = %d", len(m.Cells))
	}
	c, _ := m.Cell("A", "full")
	if !c.Runnable {
		t.Error("A on full not runnable")
	}
	c, _ = m.Cell("A", "mini")
	if !c.Runnable {
		t.Error("A on mini not runnable")
	}
	c, _ = m.Cell("B", "mini")
	if c.Runnable {
		t.Error("B on mini runnable despite missing put_pwm")
	}
	if !strings.Contains(c.Reason, "put_pwm") {
		t.Errorf("reason = %q", c.Reason)
	}
	if got := m.ReusePercent(); got != 75 {
		t.Errorf("ReusePercent = %v, want 75", got)
	}
}

func TestPerStand(t *testing.T) {
	reg := method.Builtin()
	scripts := []*script.Script{
		testScript("A", map[string]map[string]string{"put_r": {"r": "1"}}),
		testScript("B", map[string]map[string]string{"put_u": {"u": "5"}}),
	}
	stands := []StandInfo{
		{Name: "s1", Catalog: catalogWith(t, "put_r", "put_u")},
		{Name: "s2", Catalog: catalogWith(t, "put_r")},
	}
	m, err := Analyze(scripts, stands, reg)
	if err != nil {
		t.Fatal(err)
	}
	per := m.PerStand()
	if per["s1"] != 2 || per["s2"] != 1 {
		t.Errorf("PerStand = %v", per)
	}
}

func TestString(t *testing.T) {
	reg := method.Builtin()
	scripts := []*script.Script{testScript("OnlyTest", map[string]map[string]string{
		"put_pwm": {"f": "1", "duty": "2"}})}
	stands := []StandInfo{{Name: "bare", Catalog: catalogWith(t, "put_r")}}
	m, err := Analyze(scripts, stands, reg)
	if err != nil {
		t.Fatal(err)
	}
	out := m.String()
	for _, want := range []string{"OnlyTest", "bare", "NO", "0.0%", "put_pwm"} {
		if !strings.Contains(out, want) {
			t.Errorf("String() lacks %q:\n%s", want, out)
		}
	}
}

func TestControlMethodsIgnored(t *testing.T) {
	reg := method.Builtin()
	sc := testScript("W", map[string]map[string]string{"put_r": {"r": "1"}})
	sc.Steps[0].Signals = append(sc.Steps[0].Signals, &script.SignalStmt{
		Name: "sig", Call: script.MethodCall{Method: "wait", Attrs: map[string]string{"t": "1"}}})
	stands := []StandInfo{{Name: "s", Catalog: catalogWith(t, "put_r")}}
	m, err := Analyze([]*script.Script{sc}, stands, reg)
	if err != nil {
		t.Fatal(err)
	}
	if c, _ := m.Cell("W", "s"); !c.Runnable {
		t.Errorf("wait made the script unrunnable: %+v", c)
	}
}

func TestAnalyzeErrors(t *testing.T) {
	reg := method.Builtin()
	if _, err := Analyze(nil, nil, reg); err == nil {
		t.Error("empty analysis accepted")
	}
	bad := testScript("Bad", map[string]map[string]string{"put_r": {"r": "1"}})
	bad.Version = "999"
	stands := []StandInfo{{Name: "s", Catalog: catalogWith(t, "put_r")}}
	if _, err := Analyze([]*script.Script{bad}, stands, reg); err == nil {
		t.Error("invalid script accepted")
	}
}

func TestCellMissing(t *testing.T) {
	m := &Matrix{}
	if _, ok := m.Cell("x", "y"); ok {
		t.Error("ghost cell found")
	}
	if m.ReusePercent() != 0 {
		t.Error("empty matrix reuse != 0")
	}
}
