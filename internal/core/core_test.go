package core

import (
	"strings"
	"testing"

	"os"

	"repro/internal/ecu"
	"repro/internal/method"
	"repro/internal/paper"
	"repro/internal/report"
	"repro/internal/sheet"
	"repro/internal/stand"
	"repro/internal/workbooks"
)

func TestLoadPaperSuite(t *testing.T) {
	suite, err := LoadSuiteString(paper.Workbook)
	if err != nil {
		t.Fatal(err)
	}
	if suite.Signals.Len() != 7 || suite.Statuses.Len() != 7 || len(suite.Tests) != 1 {
		t.Errorf("suite shape: %d signals, %d statuses, %d tests",
			suite.Signals.Len(), suite.Statuses.Len(), len(suite.Tests))
	}
	if suite.Test("InteriorIllumination") == nil {
		t.Error("Test lookup failed")
	}
	if suite.Test("ghost") != nil {
		t.Error("ghost test found")
	}
}

func TestLoadSuiteErrors(t *testing.T) {
	cases := map[string]string{
		"no signals":  "== StatusDefinition ==\nstatus;method\n",
		"no statuses": "== SignalDefinition ==\nsignal;direction;class\n",
		"bad init": `== SignalDefinition ==
signal;direction;class;pin;init
A;in;digital;A;Ho
== StatusDefinition ==
status;method;attribut;var (x);nom;min;max
Ho;get_u;u;UBATT;1;0,7;1,1
== Test_X ==
test step;dt;A
0;1;Ho
`,
	}
	for name, in := range cases {
		if _, err := LoadSuiteString(in); err == nil {
			t.Errorf("%s: LoadSuiteString succeeded", name)
		}
	}
	if _, err := LoadSuiteFile("/nonexistent/file.csw"); err == nil {
		t.Error("LoadSuiteFile on missing file succeeded")
	}
}

func TestGenerateScripts(t *testing.T) {
	suite, err := LoadSuiteString(paper.Workbook)
	if err != nil {
		t.Fatal(err)
	}
	scripts, err := suite.GenerateScripts()
	if err != nil || len(scripts) != 1 {
		t.Fatalf("GenerateScripts = %v, %v", scripts, err)
	}
	sc, err := suite.GenerateScript("InteriorIllumination")
	if err != nil || sc.Name != "InteriorIllumination" {
		t.Fatalf("GenerateScript = %v, %v", sc, err)
	}
	if _, err := suite.GenerateScript("ghost"); err == nil {
		t.Error("GenerateScript(ghost) succeeded")
	}
}

func TestLoadStandConfig(t *testing.T) {
	wb, err := sheet.ReadWorkbookString(paper.StandSheets)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := LoadStandConfig(wb, "paper", 12)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Catalog.Len() != 3 || cfg.Matrix.Len() != 10 {
		t.Errorf("stand config: %d resources, %d connections", cfg.Catalog.Len(), cfg.Matrix.Len())
	}
	// Missing sheets error.
	wb2, _ := sheet.ReadWorkbookString("== Other ==\nx\n")
	if _, err := LoadStandConfig(wb2, "x", 12); err == nil {
		t.Error("stand workbook without sheets accepted")
	}
}

func TestRunWorkbookEndToEnd(t *testing.T) {
	// The complete paper pipeline in one call.
	reg := method.Builtin()
	cfg, err := stand.PaperConfig(reg)
	if err != nil {
		t.Fatal(err)
	}
	reps, err := RunWorkbook(paper.Workbook, cfg, func() ecu.ECU { return ecu.NewInteriorLight() })
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 1 || !reps[0].Passed() {
		t.Fatalf("pipeline run failed:\n%s", report.TextString(reps[0]))
	}
}

func TestCentralLockingWorkbook(t *testing.T) {
	// The "second ECU": its complete workbook loads, generates and passes
	// on a full lab stand.
	suite, err := LoadSuiteString(workbooks.CentralLocking)
	if err != nil {
		t.Fatal(err)
	}
	if len(suite.Tests) != 4 {
		t.Fatalf("tests = %d, want 4", len(suite.Tests))
	}
	scripts, err := suite.GenerateScripts()
	if err != nil {
		t.Fatal(err)
	}
	h := stand.HarnessFromScript(scripts[0])
	cfg, err := stand.FullLab(suite.Registry, h)
	if err != nil {
		t.Fatal(err)
	}
	st, err := stand.New(cfg, suite.Registry)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.AttachDUT(ecu.NewCentralLocking()); err != nil {
		t.Fatal(err)
	}
	for _, sc := range scripts {
		rep := st.Run(sc)
		if !rep.Passed() {
			t.Errorf("central locking %s failed:\n%s", sc.Name, report.TextString(rep))
		}
	}
}

func TestWindowLifterWorkbook(t *testing.T) {
	suite, err := LoadSuiteString(workbooks.WindowLifter)
	if err != nil {
		t.Fatal(err)
	}
	scripts, err := suite.GenerateScripts()
	if err != nil {
		t.Fatal(err)
	}
	if len(scripts) != 3 {
		t.Fatalf("scripts = %d", len(scripts))
	}
	h := stand.HarnessFromScript(scripts[0])
	cfg, err := stand.FullLab(suite.Registry, h)
	if err != nil {
		t.Fatal(err)
	}
	st, err := stand.New(cfg, suite.Registry)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.AttachDUT(ecu.NewWindowLifter()); err != nil {
		t.Fatal(err)
	}
	for _, sc := range scripts {
		rep := st.Run(sc)
		if !rep.Passed() {
			t.Errorf("window lifter %s failed:\n%s", sc.Name, report.TextString(rep))
		}
	}
}

func TestCentralLockingMutants(t *testing.T) {
	suite, err := LoadSuiteString(workbooks.CentralLocking)
	if err != nil {
		t.Fatal(err)
	}
	scripts, err := suite.GenerateScripts()
	if err != nil {
		t.Fatal(err)
	}
	h := stand.HarnessFromScript(scripts[0])
	for _, fault := range []string{"no_autolock", "autolock_3kmh", "short_pulse", "no_status", "crash_ignored"} {
		cfg, err := stand.FullLab(suite.Registry, h)
		if err != nil {
			t.Fatal(err)
		}
		st, err := stand.New(cfg, suite.Registry)
		if err != nil {
			t.Fatal(err)
		}
		dut := ecu.NewCentralLocking()
		if err := dut.InjectFault(fault); err != nil {
			t.Fatal(err)
		}
		if err := st.AttachDUT(dut); err != nil {
			t.Fatal(err)
		}
		detected := false
		for _, sc := range scripts {
			if !st.Run(sc).Passed() {
				detected = true
			}
		}
		if !detected {
			t.Errorf("central locking fault %q not detected by any test", fault)
		}
	}
}

func TestAnalyzeReuse(t *testing.T) {
	suite, err := LoadSuiteString(paper.Workbook)
	if err != nil {
		t.Fatal(err)
	}
	scripts, err := suite.GenerateScripts()
	if err != nil {
		t.Fatal(err)
	}
	h := stand.HarnessFromScript(scripts[0])
	cfgs, err := stand.Profiles(suite.Registry, h)
	if err != nil {
		t.Fatal(err)
	}
	m, err := AnalyzeReuse(scripts, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	// The paper test uses only put_can/put_r/get_u: runnable everywhere.
	if m.ReusePercent() != 100 {
		t.Errorf("paper suite reuse = %v%%, want 100\n%s", m.ReusePercent(), m)
	}
}

func TestExecute(t *testing.T) {
	suite, err := LoadSuiteString(paper.Workbook)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := suite.GenerateScript("InteriorIllumination")
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := stand.PaperConfig(suite.Registry)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Execute(sc, cfg, ecu.NewInteriorLight())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed() {
		t.Fatalf("Execute failed:\n%s", report.TextString(rep))
	}
}

func TestWriteScriptFile(t *testing.T) {
	suite, err := LoadSuiteString(paper.Workbook)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := suite.GenerateScript("InteriorIllumination")
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/out.xml"
	if err := WriteScriptFile(path, sc); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	suiteXML := string(b)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(suiteXML, "<testscript") || !strings.Contains(suiteXML, "(1.1*ubatt)") {
		t.Errorf("script file content wrong:\n%s", suiteXML)
	}
}

func TestExteriorLightWorkbook(t *testing.T) {
	// The exterior light suite exercises the stand's get_f (DRL PWM) and
	// get_r (fog relay contact) measurement paths end to end.
	suite, err := LoadSuiteString(workbooks.ExteriorLight)
	if err != nil {
		t.Fatal(err)
	}
	scripts, err := suite.GenerateScripts()
	if err != nil {
		t.Fatal(err)
	}
	if len(scripts) != 4 {
		t.Fatalf("scripts = %d, want 4", len(scripts))
	}
	h := stand.HarnessFromScript(scripts[0])
	cfg, err := stand.FullLab(suite.Registry, h)
	if err != nil {
		t.Fatal(err)
	}
	st, err := stand.New(cfg, suite.Registry)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.AttachDUT(ecu.NewExteriorLight()); err != nil {
		t.Fatal(err)
	}
	for _, sc := range scripts {
		rep := st.Run(sc)
		if !rep.Passed() {
			t.Errorf("exterior light %s failed:\n%s", sc.Name, report.TextString(rep))
		}
	}
}

func TestExteriorLightMutants(t *testing.T) {
	suite, err := LoadSuiteString(workbooks.ExteriorLight)
	if err != nil {
		t.Fatal(err)
	}
	scripts, err := suite.GenerateScripts()
	if err != nil {
		t.Fatal(err)
	}
	h := stand.HarnessFromScript(scripts[0])
	for _, fault := range []string{"no_fmh", "fmh_10s", "drl_slow_pwm", "drl_at_night", "fog_stuck_open"} {
		cfg, err := stand.FullLab(suite.Registry, h)
		if err != nil {
			t.Fatal(err)
		}
		st, err := stand.New(cfg, suite.Registry)
		if err != nil {
			t.Fatal(err)
		}
		dut := ecu.NewExteriorLight()
		if err := dut.InjectFault(fault); err != nil {
			t.Fatal(err)
		}
		if err := st.AttachDUT(dut); err != nil {
			t.Fatal(err)
		}
		detected := false
		for _, sc := range scripts {
			if !st.Run(sc).Passed() {
				detected = true
			}
		}
		if !detected {
			t.Errorf("exterior light fault %q not detected by any test", fault)
		}
	}
}

func TestLoadSuiteFromTestdataFile(t *testing.T) {
	// The file-based workflow: the canonical workbooks also live as CSW
	// files under testdata/ for use with `comptest -workbook`.
	suite, err := LoadSuiteFile("../../testdata/interior_illumination.csw")
	if err != nil {
		t.Fatal(err)
	}
	if suite.Signals.Len() != 7 || len(suite.Tests) != 1 {
		t.Errorf("file suite shape: %d signals, %d tests", suite.Signals.Len(), len(suite.Tests))
	}
	wb, err := sheet.ReadWorkbookFile("../../testdata/paper_stand.csw")
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := LoadStandConfig(wb, "paper_file", 12)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Catalog.Len() != 3 {
		t.Errorf("file stand resources = %d", cfg.Catalog.Len())
	}
}
