// Package core is the deprecated free-function predecessor of the
// public comptest package. It remains as a thin shim so old imports
// keep compiling; every function delegates to comptest.
//
// Deprecated: use repro/comptest — it adds context-aware execution,
// functional options, stand/DUT registries and concurrent campaigns.
package core

import (
	"context"

	"repro/comptest"
	"repro/internal/ecu"
	"repro/internal/report"
	"repro/internal/reuse"
	"repro/internal/script"
	"repro/internal/sheet"
	"repro/internal/stand"
)

// Suite is a fully cross-validated test workbook.
//
// Deprecated: use comptest.Suite.
type Suite = comptest.Suite

// Sheet names expected in a workbook.
//
// Deprecated: use comptest.SignalSheetName / comptest.StatusSheetName.
const (
	SignalSheetName = comptest.SignalSheetName
	StatusSheetName = comptest.StatusSheetName
)

// LoadSuite parses and cross-validates a workbook.
//
// Deprecated: use comptest.LoadSuite.
func LoadSuite(wb *sheet.Workbook) (*Suite, error) { return comptest.LoadSuite(wb) }

// LoadSuiteString parses a workbook held in a string.
//
// Deprecated: use comptest.LoadSuiteString.
func LoadSuiteString(s string) (*Suite, error) { return comptest.LoadSuiteString(s) }

// LoadSuiteFile parses a workbook file.
//
// Deprecated: use comptest.LoadSuiteFile.
func LoadSuiteFile(path string) (*Suite, error) { return comptest.LoadSuiteFile(path) }

// LoadStandConfig parses a stand workbook into a stand configuration.
//
// Deprecated: use comptest.LoadStandConfig.
func LoadStandConfig(wb *sheet.Workbook, name string, ubattVolts float64) (stand.Config, error) {
	return comptest.LoadStandConfig(wb, name, ubattVolts)
}

// Execute builds the stand, attaches the DUT and runs one script.
//
// Deprecated: use comptest.NewRunner(comptest.WithStandConfig(cfg),
// comptest.WithDUTFactory(…)) and Runner.RunScript.
func Execute(sc *script.Script, cfg stand.Config, dut ecu.ECU) (*report.Report, error) {
	opts := []comptest.Option{comptest.WithStandConfig(cfg)}
	if dut != nil {
		opts = append(opts, comptest.WithDUTFactory(func() ecu.ECU { return dut }))
	}
	r, err := comptest.NewRunner(opts...)
	if err != nil {
		return nil, err
	}
	return r.RunScript(context.Background(), sc)
}

// RunWorkbook is the complete paper pipeline for one workbook on one
// stand: load, validate, generate, execute every test, report.
//
// Deprecated: use comptest.Runner.RunWorkbook.
func RunWorkbook(workbook string, cfg stand.Config, dutFactory func() ecu.ECU) ([]*report.Report, error) {
	opts := []comptest.Option{comptest.WithStandConfig(cfg)}
	if dutFactory != nil {
		opts = append(opts, comptest.WithDUTFactory(dutFactory))
	}
	r, err := comptest.NewRunner(opts...)
	if err != nil {
		return nil, err
	}
	return r.RunWorkbook(context.Background(), workbook)
}

// AnalyzeReuse wraps reuse.Analyze for stand configurations.
//
// Deprecated: use comptest.AnalyzeReuse.
func AnalyzeReuse(scripts []*script.Script, cfgs []stand.Config) (*reuse.Matrix, error) {
	return comptest.AnalyzeReuse(scripts, cfgs)
}

// WriteScriptFile generates and writes one script as XML.
//
// Deprecated: use comptest.WriteScriptFile.
func WriteScriptFile(path string, sc *script.Script) error {
	return comptest.WriteScriptFile(path, sc)
}
