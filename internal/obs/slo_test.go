package obs

import (
	"math"
	"strings"
	"testing"
)

// TestParseObjective covers the spec syntax: canonical form, "<" as an
// alias for "<=", fractional quantiles, and the malformed shapes that
// must fail loudly instead of evaluating a wrong SLO.
func TestParseObjective(t *testing.T) {
	pct := 99.9 // runtime division below, matching the parser's pct/100
	good := []struct {
		in   string
		want Objective
	}{
		{"unit_seconds:p95<=0.5", Objective{Metric: "unit_seconds", Quantile: 0.95, Max: 0.5}},
		{"unit_seconds:p95<0.5", Objective{Metric: "unit_seconds", Quantile: 0.95, Max: 0.5}},
		{"job_seconds:p99.9<=600", Objective{Metric: "job_seconds", Quantile: pct / 100, Max: 600}},
		{"q:p50<=0", Objective{Metric: "q", Quantile: 0.5, Max: 0}},
	}
	for _, tc := range good {
		got, err := ParseObjective(tc.in)
		if err != nil {
			t.Errorf("ParseObjective(%q): %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParseObjective(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
		// String renders back into parseable spec syntax.
		back, err := ParseObjective(got.String())
		if err != nil || back != got {
			t.Errorf("round trip of %q via %q: %+v, %v", tc.in, got.String(), back, err)
		}
	}
	for _, bad := range []string{
		"", "unit_seconds", ":p95<=1", "m:95<=1", "m:p95", "m:p0<=1",
		"m:p101<=1", "m:pX<=1", "m:p95<=x", "m:p95<=-1",
	} {
		if _, err := ParseObjective(bad); err == nil {
			t.Errorf("ParseObjective(%q) accepted", bad)
		}
	}
	objs, err := ParseObjectives("a:p50<=1, b:p99<=2,")
	if err != nil || len(objs) != 2 {
		t.Errorf("ParseObjectives list: %v, %v", objs, err)
	}
}

// TestQuantileEdges pins the histogram_quantile conventions: NaN on an
// empty cell, interpolation from zero in the first bucket, clamping to
// the last finite bound when the rank lands in +Inf, and NaN when there
// are no finite buckets to interpolate against at all.
func TestQuantileEdges(t *testing.T) {
	if !math.IsNaN(Quantile(Cell{}, 0.5)) {
		t.Error("empty cell: want NaN")
	}
	// Single bucket, all 10 samples inside: p50 interpolates from 0.
	single := Cell{Count: 10, Buckets: []Bucket{{LE: 2, Count: 10}}}
	if got := Quantile(single, 0.5); got != 1 {
		t.Errorf("single-bucket p50 = %v, want 1 (linear from 0 to 2)", got)
	}
	if got := Quantile(single, 1); got != 2 {
		t.Errorf("single-bucket p100 = %v, want the bound 2", got)
	}
	// Every sample beyond the finite buckets: clamp to the last bound.
	over := Cell{Count: 5, Buckets: []Bucket{{LE: 1, Count: 0}, {LE: 4, Count: 0}}}
	if got := Quantile(over, 0.5); got != 4 {
		t.Errorf("all-in-overflow p50 = %v, want last finite bound 4", got)
	}
	// Samples but no finite buckets at all: nothing to estimate with.
	if !math.IsNaN(Quantile(Cell{Count: 3}, 0.5)) {
		t.Error("no finite buckets: want NaN")
	}
	// Interpolation in an interior bucket: 4 samples <=1, 8 <=3; the
	// p75 rank 6 sits halfway through (1, 3].
	mid := Cell{Count: 8, Buckets: []Bucket{{LE: 1, Count: 4}, {LE: 3, Count: 8}}}
	if got := Quantile(mid, 0.75); got != 2 {
		t.Errorf("interior p75 = %v, want 2", got)
	}
}

// TestEvalSLOFleetFold models the coordinator's /slo: one histogram
// family split over worker-labelled cells folds into a single estimate,
// and the verdict is the conjunction over objectives. Metrics without
// samples pass vacuously with NoData — a fresh deployment is not in
// violation.
func TestEvalSLOFleetFold(t *testing.T) {
	mk := func(obs ...float64) Snapshot {
		r := NewRegistry()
		h := r.Histogram("unit_seconds", "u", []float64{1, 10})
		for _, v := range obs {
			h.Observe(v)
		}
		return r.Snapshot()
	}
	fleet := Merge(
		mk(0.5, 0.5, 0.5).WithLabel("worker", "w-0001"),
		mk(0.5, 20).WithLabel("worker", "w-0002"), // one outlier past every bound
	)
	rep := EvalSLO(fleet, []Objective{
		{Metric: "unit_seconds", Quantile: 0.5, Max: 1},     // p50 well inside
		{Metric: "unit_seconds", Quantile: 0.99, Max: 1},    // p99 hits the outlier
		{Metric: "never_observed_seconds", Quantile: 0.95, Max: 1},
	})
	if len(rep.Results) != 3 {
		t.Fatalf("results: %+v", rep.Results)
	}
	p50, p99, missing := rep.Results[0], rep.Results[1], rep.Results[2]
	if !p50.Pass || p50.Count != 5 || p50.Estimate > 1 {
		t.Errorf("p50 over the folded 5 samples: %+v", p50)
	}
	if p99.Pass || p99.Estimate != 10 {
		t.Errorf("p99 must clamp to the last finite bound and fail: %+v", p99)
	}
	if !missing.Pass || !missing.NoData {
		t.Errorf("absent family must pass vacuously with NoData: %+v", missing)
	}
	if rep.Pass {
		t.Error("report passed despite a violated objective")
	}

	var sb strings.Builder
	if err := rep.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{"unit_seconds p99 = 10s", "FAIL", "no data", "SLO: FAIL"} {
		if !strings.Contains(text, want) {
			t.Errorf("text report missing %q:\n%s", want, text)
		}
	}
}
