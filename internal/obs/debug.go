package obs

import (
	"net/http"
	"net/http/pprof"
)

// DebugHandler returns a mux serving the net/http/pprof endpoints under
// /debug/pprof/. The routes are registered explicitly instead of
// leaning on the net/http/pprof init side effect, so the profiler never
// leaks onto a production mux: it only exists on the opt-in
// -debug-addr listener the CLI wires up.
func DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
