package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
)

// Log formats accepted by NewLogHandler and the CLI's -log-format flag.
const (
	LogText = "text"
	LogJSON = "json"
)

// NewLogHandler builds a slog handler writing one record per line to w.
// format is "text" (the default when empty) or "json"; json is the
// machine-readable form the per-job event ring and log shippers consume.
func NewLogHandler(w io.Writer, format string) (slog.Handler, error) {
	switch format {
	case "", LogText:
		return slog.NewTextHandler(w, nil), nil
	case LogJSON:
		return slog.NewJSONHandler(w, nil), nil
	default:
		return nil, fmt.Errorf("obs: unknown log format %q (want text or json)", format)
	}
}

// NewLogger builds a slog.Logger on a NewLogHandler handler.
func NewLogger(w io.Writer, format string) (*slog.Logger, error) {
	h, err := NewLogHandler(w, format)
	if err != nil {
		return nil, err
	}
	return slog.New(h), nil
}

// Fanout composes handlers: every record goes to each of them. Nil
// handlers are skipped, so callers can pass an optional process handler
// alongside an always-present one (the serve layer tees each job's
// events into its ring buffer and, when configured, the process log).
func Fanout(handlers ...slog.Handler) slog.Handler {
	hs := make([]slog.Handler, 0, len(handlers))
	for _, h := range handlers {
		if h != nil {
			hs = append(hs, h)
		}
	}
	return fanout{hs: hs}
}

type fanout struct{ hs []slog.Handler }

// Enabled reports whether any fanned-out handler wants the level.
func (f fanout) Enabled(ctx context.Context, lvl slog.Level) bool {
	for _, h := range f.hs {
		if h.Enabled(ctx, lvl) {
			return true
		}
	}
	return false
}

// Handle forwards the record to every enabled handler; the first error
// is returned after all handlers ran.
func (f fanout) Handle(ctx context.Context, r slog.Record) error {
	var first error
	for _, h := range f.hs {
		if !h.Enabled(ctx, r.Level) {
			continue
		}
		if err := h.Handle(ctx, r.Clone()); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// WithAttrs implements slog.Handler.
func (f fanout) WithAttrs(attrs []slog.Attr) slog.Handler {
	hs := make([]slog.Handler, len(f.hs))
	for i, h := range f.hs {
		hs[i] = h.WithAttrs(attrs)
	}
	return fanout{hs: hs}
}

// WithGroup implements slog.Handler.
func (f fanout) WithGroup(name string) slog.Handler {
	hs := make([]slog.Handler, len(f.hs))
	for i, h := range f.hs {
		hs[i] = h.WithGroup(name)
	}
	return fanout{hs: hs}
}
