package obs

import (
	"encoding/json"
	"log/slog"
	"strings"
	"testing"
)

// TestNewLogHandlerFormats: "" defaults to text, "json" emits one JSON
// object per line with the standard slog keys, and an unknown format is
// a flag error, not a silent fallback.
func TestNewLogHandlerFormats(t *testing.T) {
	var text strings.Builder
	lg, err := NewLogger(&text, "")
	if err != nil {
		t.Fatal(err)
	}
	lg.Info("job accepted", "job", "j-0001")
	if s := text.String(); !strings.Contains(s, "msg=\"job accepted\"") || !strings.Contains(s, "job=j-0001") {
		t.Errorf("text record: %q", s)
	}

	var jsonBuf strings.Builder
	lg, err = NewLogger(&jsonBuf, LogJSON)
	if err != nil {
		t.Fatal(err)
	}
	lg.Warn("shard requeued", "shard", 4, "worker", "w-0002")
	var rec map[string]any
	if err := json.Unmarshal([]byte(jsonBuf.String()), &rec); err != nil {
		t.Fatalf("json record %q: %v", jsonBuf.String(), err)
	}
	if rec["msg"] != "shard requeued" || rec["level"] != "WARN" ||
		rec["shard"] != float64(4) || rec["worker"] != "w-0002" {
		t.Errorf("json record fields: %v", rec)
	}

	if _, err := NewLogger(&text, "xml"); err == nil {
		t.Error("unknown format accepted")
	}
}

// TestFanout: each record reaches every non-nil handler, correlation
// attrs added via With survive the tee, and nil handlers (the optional
// process log) are skipped rather than dereferenced.
func TestFanout(t *testing.T) {
	var ring, proc strings.Builder
	ringH := slog.NewJSONHandler(&ring, nil)
	procH := slog.NewTextHandler(&proc, nil)
	lg := slog.New(Fanout(ringH, nil, procH)).With("job", "j-0001")
	lg.Info("job started", "wait_s", 5.0)

	var rec map[string]any
	if err := json.Unmarshal([]byte(ring.String()), &rec); err != nil {
		t.Fatalf("ring record %q: %v", ring.String(), err)
	}
	if rec["job"] != "j-0001" || rec["msg"] != "job started" {
		t.Errorf("ring record lost attrs: %v", rec)
	}
	if s := proc.String(); !strings.Contains(s, "job=j-0001") || !strings.Contains(s, "wait_s=5") {
		t.Errorf("process record: %q", s)
	}

	// All-nil fanout behaves as a discard handler.
	quiet := slog.New(Fanout(nil, nil))
	quiet.Info("dropped") // must not panic
}
