package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestConcurrentIncrements hammers one counter, one gauge and one
// histogram from many goroutines; run with -race this doubles as the
// registry's data-race proof, and the final values prove no increment
// was lost.
func TestConcurrentIncrements(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "ops")
	g := r.Gauge("test_level", "level")
	h := r.Histogram("test_dur_seconds", "durations", []float64{0.1, 1, 10})
	cv := r.CounterVec("test_labeled_total", "labeled", "kind")

	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			kind := []string{"a", "b"}[w%2]
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(0.5)
				cv.With(kind).Inc()
				// Snapshot concurrently with writes to exercise the
				// collect path under race as well.
				if i%251 == 0 {
					_ = r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()

	if got := c.Value(); got != workers*per {
		t.Errorf("counter = %d, want %d", got, workers*per)
	}
	if got := g.Value(); got != 0 {
		t.Errorf("gauge = %v, want 0", got)
	}
	if got := h.Count(); got != workers*per {
		t.Errorf("histogram count = %d, want %d", got, workers*per)
	}
	if got := h.Sum(); got != workers*per*0.5 {
		t.Errorf("histogram sum = %v, want %v", got, workers*per*0.5)
	}
	snap := r.Snapshot()
	if got := snap.CellValue("test_labeled_total", Label{Name: "kind", Value: "a"}); got != workers*per/2 {
		t.Errorf("labeled counter a = %v, want %d", got, workers*per/2)
	}
}

// TestPrometheusTextGolden pins the exposition bytes: sorted families,
// sorted cells, sorted label names, histogram bucket/sum/count lines.
func TestPrometheusTextGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("zz_last_total", "registered first, renders last").Add(3)
	r.Gauge("aa_depth", "queue depth").Set(7)
	cv := r.CounterVec("jobs_total", "jobs by state", "state")
	cv.With("done").Add(5)
	cv.With("failed").Inc()
	h := r.Histogram("dur_seconds", "durations", []float64{0.5, 2})
	h.Observe(0.25)
	h.Observe(1)
	h.Observe(99)
	r.GaugeFunc("fn_value", "func-backed", func() float64 { return 1.5 })

	var b strings.Builder
	if err := r.Snapshot().WriteText(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP aa_depth queue depth
# TYPE aa_depth gauge
aa_depth 7
# HELP dur_seconds durations
# TYPE dur_seconds histogram
dur_seconds_bucket{le="0.5"} 1
dur_seconds_bucket{le="2"} 2
dur_seconds_bucket{le="+Inf"} 3
dur_seconds_sum 100.25
dur_seconds_count 3
# HELP fn_value func-backed
# TYPE fn_value gauge
fn_value 1.5
# HELP jobs_total jobs by state
# TYPE jobs_total counter
jobs_total{state="done"} 5
jobs_total{state="failed"} 1
# HELP zz_last_total registered first, renders last
# TYPE zz_last_total counter
zz_last_total 3
`
	if b.String() != want {
		t.Errorf("text exposition mismatch\n--- got ---\n%s--- want ---\n%s", b.String(), want)
	}
}

// TestHistogramBucketBoundaries exercises the le-inclusive contract:
// a sample exactly on a bound lands in that bucket.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("b_seconds", "", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.0000001, 2, 4, 4.5} {
		h.Observe(v)
	}
	snap := r.Snapshot()
	var cell Cell
	for _, f := range snap.Families {
		if f.Name == "b_seconds" {
			cell = f.Cells[0]
		}
	}
	wantCum := []int64{2, 4, 5} // <=1: {0.5,1}; <=2: +{1.0000001,2}; <=4: +{4}
	for i, b := range cell.Buckets {
		if b.Count != wantCum[i] {
			t.Errorf("bucket le=%v count = %d, want %d", b.LE, b.Count, wantCum[i])
		}
	}
	if cell.Count != 6 {
		t.Errorf("count = %d, want 6", cell.Count)
	}
}

// TestSnapshotJSONRoundTrip proves the JSON dump parses back into an
// identical snapshot (the wire format dist uses to scrape workers).
func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("x_total", "x", "kind").With("k").Add(2)
	r.Histogram("h_seconds", "h", []float64{1}).Observe(0.5)
	snap := r.Snapshot()
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	var a, b strings.Builder
	snap.WriteText(&a)
	back.WriteText(&b)
	if a.String() != b.String() {
		t.Errorf("round trip changed rendering:\n%s\nvs\n%s", a.String(), b.String())
	}
}

// TestWithLabelAndMerge models the coordinator's fleet aggregation:
// two worker snapshots relabeled and merged with the coordinator's own
// must render one TYPE block per family with distinct worker series.
func TestWithLabelAndMerge(t *testing.T) {
	mk := func(n int64) Snapshot {
		r := NewRegistry()
		r.Counter("units_total", "units").Add(n)
		return r.Snapshot()
	}
	own := NewRegistry()
	own.Counter("requeues_total", "requeues").Inc()
	merged := Merge(
		own.Snapshot(),
		mk(3).WithLabel("worker", "w-0001"),
		mk(4).WithLabel("worker", "w-0002"),
	)
	var b strings.Builder
	if err := merged.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if strings.Count(out, "# TYPE units_total counter") != 1 {
		t.Errorf("want exactly one TYPE block for units_total:\n%s", out)
	}
	for _, want := range []string{
		`units_total{worker="w-0001"} 3`,
		`units_total{worker="w-0002"} 4`,
		`requeues_total 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("merged output missing %q:\n%s", want, out)
		}
	}
	if got := merged.CellValue("units_total", Label{Name: "worker", Value: "w-0002"}); got != 4 {
		t.Errorf("CellValue = %v, want 4", got)
	}
}

// TestGaugeFuncVec: a labeled func-backed family renders one series
// per returned cell, sorted deterministically regardless of fn order.
func TestGaugeFuncVec(t *testing.T) {
	r := NewRegistry()
	r.GaugeFuncVec("jobs", "jobs by state", []string{"state"}, func() []FuncCell {
		return []FuncCell{
			{Values: []string{"running"}, Value: 2},
			{Values: []string{"queued"}, Value: 5},
		}
	})
	var b strings.Builder
	if err := r.Snapshot().WriteText(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP jobs jobs by state
# TYPE jobs gauge
jobs{state="queued"} 5
jobs{state="running"} 2
`
	if b.String() != want {
		t.Errorf("got:\n%swant:\n%s", b.String(), want)
	}
	if got := r.Snapshot().CellValue("jobs", Label{Name: "state", Value: "queued"}); got != 5 {
		t.Errorf("CellValue = %v, want 5", got)
	}
}

// TestHandlerFormats checks the /metrics handler's two content types.
func TestHandlerFormats(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "c").Inc()
	h := r.Handler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "c_total 1") {
		t.Errorf("text body missing counter:\n%s", rec.Body.String())
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics?format=json", nil))
	snap, err := ParseJSON(rec.Body.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if got := snap.Value("c_total"); got != 1 {
		t.Errorf("json snapshot c_total = %v, want 1", got)
	}
}

// TestIdempotentRegistration: same name+type returns the same cell;
// mismatched type panics.
func TestIdempotentRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("same_total", "a")
	b := r.Counter("same_total", "a")
	a.Inc()
	if b.Value() != 1 {
		t.Errorf("re-registration did not alias: %d", b.Value())
	}
	defer func() {
		if recover() == nil {
			t.Error("type mismatch did not panic")
		}
	}()
	r.Gauge("same_total", "boom")
}

// TestDebugHandlerServesPprof sanity-checks the opt-in profiler mux.
func TestDebugHandlerServesPprof(t *testing.T) {
	rec := httptest.NewRecorder()
	DebugHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "profile") {
		t.Errorf("pprof index: code=%d body=%.80s", rec.Code, rec.Body.String())
	}
}
