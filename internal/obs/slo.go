package obs

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/comptest/api"
)

// Objective is one service-level objective: "the q-quantile of Metric
// must not exceed Max seconds". Objectives are evaluated against a
// snapshot's histogram families by bucket interpolation — the same
// estimate Prometheus's histogram_quantile computes — so a fleet
// snapshot (merged worker cells) answers for the whole deployment.
// The type (with its String rendering) is canonical in comptest/api,
// since objectives and their verdicts travel over the /slo endpoints;
// the parsing and evaluation machinery lives here.
type Objective = api.Objective

// ParseObjective reads "metric:p95<=0.5" (or "<" — both mean the same
// inclusive bound): the p-quantile of histogram `metric` must be at
// most 0.5 seconds. Fractional quantiles like p99.9 are accepted.
func ParseObjective(s string) (Objective, error) {
	name, rest, ok := strings.Cut(s, ":")
	if !ok || name == "" {
		return Objective{}, fmt.Errorf("obs: objective %q: want metric:pNN<=seconds", s)
	}
	q, bound, ok := strings.Cut(rest, "<")
	bound = strings.TrimPrefix(bound, "=")
	if !ok || !strings.HasPrefix(q, "p") {
		return Objective{}, fmt.Errorf("obs: objective %q: want metric:pNN<=seconds", s)
	}
	pct, err := strconv.ParseFloat(q[1:], 64)
	if err != nil || pct <= 0 || pct > 100 {
		return Objective{}, fmt.Errorf("obs: objective %q: bad quantile %q", s, q)
	}
	max, err := strconv.ParseFloat(bound, 64)
	if err != nil || max < 0 {
		return Objective{}, fmt.Errorf("obs: objective %q: bad bound %q", s, bound)
	}
	return Objective{Metric: name, Quantile: pct / 100, Max: max}, nil
}

// ParseObjectives reads a comma-separated objective list.
func ParseObjectives(s string) ([]Objective, error) {
	var out []Objective
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		o, err := ParseObjective(part)
		if err != nil {
			return nil, err
		}
		out = append(out, o)
	}
	return out, nil
}

// Quantile estimates the q-quantile of a histogram cell by linear
// interpolation inside the bucket the quantile falls in. The cell's
// Buckets are cumulative with finite bounds; the +Inf bucket is implied
// by Count. Following Prometheus's histogram_quantile conventions:
//
//   - an empty cell (Count == 0) has no quantiles — NaN;
//   - a quantile landing in the +Inf bucket clamps to the highest
//     finite bound (there is nothing to interpolate against);
//   - the first bucket interpolates from 0, the assumed lower bound of
//     a latency histogram.
func Quantile(c Cell, q float64) float64 {
	if c.Count <= 0 {
		return math.NaN()
	}
	rank := q * float64(c.Count)
	prevBound, prevCum := 0.0, int64(0)
	for _, b := range c.Buckets {
		if float64(b.Count) >= rank {
			in := b.Count - prevCum
			if in <= 0 {
				return b.LE
			}
			return prevBound + (b.LE-prevBound)*(rank-float64(prevCum))/float64(in)
		}
		prevBound, prevCum = b.LE, b.Count
	}
	// Beyond every finite bucket: all that is known is "more than the
	// last bound". With no finite buckets at all there is no estimate.
	if len(c.Buckets) == 0 {
		return math.NaN()
	}
	return c.Buckets[len(c.Buckets)-1].LE
}

// familyCell folds every cell of the named histogram family into one:
// counts, sums and per-bound bucket counts add up. This is what turns a
// fleet snapshot's per-worker cells into one deployment-wide histogram
// (all cells of a family share bounds — they come from the same build).
func familyCell(s Snapshot, name string) (Cell, bool) {
	var out Cell
	found := false
	byLE := map[float64]int64{}
	var order []float64
	for _, f := range s.Families {
		if f.Name != name || f.Type != TypeHistogram {
			continue
		}
		for _, c := range f.Cells {
			found = true
			out.Count += c.Count
			out.Sum += c.Sum
			for _, b := range c.Buckets {
				if _, ok := byLE[b.LE]; !ok {
					order = append(order, b.LE)
				}
				byLE[b.LE] += b.Count
			}
		}
	}
	if !found {
		return Cell{}, false
	}
	for _, le := range order {
		out.Buckets = append(out.Buckets, Bucket{LE: le, Count: byLE[le]})
	}
	return out, true
}

// SLOResult is one objective's verdict against a snapshot
// (api.SLOResult); SLOReport the full evaluation with the conjunction
// verdict (api.SLOReport, which carries the WriteText rendering).
type (
	SLOResult = api.SLOResult
	SLOReport = api.SLOReport
)

// EvalSLO evaluates the objectives against the snapshot. An objective
// whose metric has no samples yet passes vacuously (NoData marks it) —
// a fresh deployment is not in violation.
func EvalSLO(snap Snapshot, objs []Objective) SLOReport {
	rep := SLOReport{Pass: true}
	for _, o := range objs {
		res := SLOResult{Objective: o, Pass: true}
		cell, ok := familyCell(snap, o.Metric)
		if !ok || cell.Count == 0 {
			res.NoData = true
		} else {
			est := Quantile(cell, o.Quantile)
			res.Count = cell.Count
			if math.IsNaN(est) {
				res.NoData = true
			} else {
				res.Estimate = est
				res.Pass = est <= o.Max
			}
		}
		if !res.Pass {
			rep.Pass = false
		}
		rep.Results = append(rep.Results, res)
	}
	return rep
}

