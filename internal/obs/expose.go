package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// Snapshot is a point-in-time copy of a registry (or a merge of
// several). It is the unit of exposition: the same snapshot renders as
// Prometheus text format or as JSON, and the dist coordinator ships
// worker snapshots as JSON before relabeling and merging them into its
// own.
type Snapshot struct {
	Families []Family `json:"families"`
}

// Family is one named metric and its cells.
type Family struct {
	Name  string `json:"name"`
	Help  string `json:"help,omitempty"`
	Type  string `json:"type"`
	Cells []Cell `json:"cells"`
}

// Cell is one label combination's sampled value. Counters and gauges
// use Value; histograms use Buckets (cumulative, finite bounds only —
// the +Inf bucket is implied by Count), Sum and Count.
type Cell struct {
	Labels  []Label  `json:"labels,omitempty"`
	Value   float64  `json:"value"`
	Buckets []Bucket `json:"buckets,omitempty"`
	Sum     float64  `json:"sum,omitempty"`
	Count   int64    `json:"count,omitempty"`
}

// Label is one name/value pair.
type Label struct {
	Name  string `json:"name"`
	Value string `json:"value"`
}

// Bucket is one cumulative histogram bucket: Count samples were <= LE.
type Bucket struct {
	LE    float64 `json:"le"`
	Count int64   `json:"count"`
}

// Value returns the value of the named family's first cell, or 0 if the
// family is absent. It is the lookup /healthz uses, so health and
// metrics read the very same snapshot.
func (s Snapshot) Value(name string) float64 {
	for _, f := range s.Families {
		if f.Name == name && len(f.Cells) > 0 {
			return f.Cells[0].Value
		}
	}
	return 0
}

// CellValue returns the value of the cell in family name whose labels
// include every given name=value pair, or 0 if no cell matches.
func (s Snapshot) CellValue(name string, labels ...Label) float64 {
	for _, f := range s.Families {
		if f.Name != name {
			continue
		}
	cells:
		for _, c := range f.Cells {
			for _, want := range labels {
				if !hasLabel(c.Labels, want) {
					continue cells
				}
			}
			return c.Value
		}
	}
	return 0
}

func hasLabel(ls []Label, want Label) bool {
	for _, l := range ls {
		if l == want {
			return true
		}
	}
	return false
}

// WithLabel returns a copy of the snapshot with name=value prepended to
// every cell's labels. The coordinator uses it to distinguish scraped
// worker series ({worker="w-0001"}) from its own before merging.
func (s Snapshot) WithLabel(name, value string) Snapshot {
	out := Snapshot{Families: make([]Family, len(s.Families))}
	for i, f := range s.Families {
		nf := f
		nf.Cells = make([]Cell, len(f.Cells))
		for j, c := range f.Cells {
			nc := c
			nc.Labels = append([]Label{{Name: name, Value: value}}, c.Labels...)
			nf.Cells[j] = nc
		}
		out.Families[i] = nf
	}
	return out
}

// Merge combines snapshots into one: families with the same name are
// unified (first Help/Type wins, which assumes like-named families
// agree on type) and their cells concatenated. Rendering sorts families
// and cells, so the merge order does not affect the output bytes.
func Merge(snaps ...Snapshot) Snapshot {
	var out Snapshot
	index := make(map[string]int)
	for _, s := range snaps {
		for _, f := range s.Families {
			if i, ok := index[f.Name]; ok {
				out.Families[i].Cells = append(out.Families[i].Cells, f.Cells...)
				continue
			}
			nf := f
			nf.Cells = append([]Cell(nil), f.Cells...)
			index[f.Name] = len(out.Families)
			out.Families = append(out.Families, nf)
		}
	}
	return out
}

// MarshalJSON output parses back with ParseJSON; the types are plain
// structs, so the default encoding is the wire format.

// ParseJSON decodes a snapshot previously produced by writing the
// snapshot as JSON (Handler's ?format=json or json.Marshal).
func ParseJSON(data []byte) (Snapshot, error) {
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return Snapshot{}, fmt.Errorf("obs: parse snapshot: %w", err)
	}
	return s, nil
}

// WriteText renders the snapshot in Prometheus text exposition format
// 0.0.4. Families are sorted by name and cells by label values, so the
// output is byte-deterministic for a given snapshot.
func (s Snapshot) WriteText(w io.Writer) error {
	fams := append([]Family(nil), s.Families...)
	sort.Slice(fams, func(i, j int) bool { return fams[i].Name < fams[j].Name })
	var b strings.Builder
	for _, f := range fams {
		b.Reset()
		if f.Help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.Name, f.Help)
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.Name, f.Type)
		cells := append([]Cell(nil), f.Cells...)
		sort.Slice(cells, func(i, j int) bool {
			return labelKey(cells[i].Labels) < labelKey(cells[j].Labels)
		})
		for _, c := range cells {
			if f.Type == TypeHistogram {
				for _, bk := range c.Buckets {
					fmt.Fprintf(&b, "%s_bucket%s %d\n",
						f.Name, labelSet(c.Labels, Label{Name: "le", Value: formatFloat(bk.LE)}), bk.Count)
				}
				fmt.Fprintf(&b, "%s_bucket%s %d\n",
					f.Name, labelSet(c.Labels, Label{Name: "le", Value: "+Inf"}), c.Count)
				fmt.Fprintf(&b, "%s_sum%s %s\n", f.Name, labelSet(c.Labels), formatFloat(c.Sum))
				fmt.Fprintf(&b, "%s_count%s %d\n", f.Name, labelSet(c.Labels), c.Count)
				continue
			}
			fmt.Fprintf(&b, "%s%s %s\n", f.Name, labelSet(c.Labels), formatFloat(c.Value))
		}
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

func labelKey(ls []Label) string {
	var b strings.Builder
	for _, l := range ls {
		b.WriteString(l.Name)
		b.WriteByte(1)
		b.WriteString(l.Value)
		b.WriteByte(2)
	}
	return b.String()
}

// labelSet renders {a="x",b="y"} with labels sorted by name, or the
// empty string when there are none.
func labelSet(ls []Label, extra ...Label) string {
	all := append(append([]Label(nil), ls...), extra...)
	if len(all) == 0 {
		return ""
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].Name < all[j].Name })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range all {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Name, l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler serves the registry: Prometheus text format by default,
// the JSON snapshot with ?format=json. Mount it at /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		snap := r.Snapshot()
		if req.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(snap)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		snap.WriteText(w)
	})
}
