// Package obs is a dependency-free metrics registry with Prometheus
// text-format exposition and a JSON snapshot dump.
//
// The package exists because the reproduction's service layer (comptest
// serve, comptest worker, the dist coordinator) needs queue-depth,
// cache-hit, throughput and requeue telemetry, and the module policy
// forbids third-party dependencies. The feature set is deliberately the
// small subset of the Prometheus client that the repo actually uses:
//
//   - Counter, Gauge, Histogram cells with atomic hot paths
//   - labeled families (CounterVec, GaugeVec, HistogramVec)
//   - func-backed cells (CounterFunc, GaugeFunc) that read live state
//     at collect time, so /metrics and /healthz can never disagree
//   - deterministic Snapshot -> text-format 0.0.4 / JSON rendering
//   - snapshot relabeling and merging, used by the dist coordinator to
//     re-export scraped worker metrics under a "worker" label
//   - quantile estimation over histogram buckets plus SLO objective
//     parsing/evaluation ([Quantile], [ParseObjectives], [EvalSLO]),
//     behind the /slo endpoints and `comptest slo`
//   - structured-logging helpers ([NewLogger], [Fanout]) shared by the
//     serve/dist/CLI slog event layer
//
// obs is also the module's wall-clock seam: packages under the
// //lint:deterministic regime (explore, mutation, dist, report) must not
// reference time.Now directly, so they take a clock func and callers
// default it to [Wall].
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Wall is the process wall clock. It is the single place the service
// layer reads real time from: //lint:deterministic packages receive it
// (or a test fake) as an injected `func() time.Time` instead of calling
// time.Now themselves, which keeps the nodeterminism analyzer clean
// without per-line suppressions.
func Wall() time.Time { return time.Now() }

// Metric family types, mirroring the Prometheus text-format TYPE values.
const (
	TypeCounter   = "counter"
	TypeGauge     = "gauge"
	TypeHistogram = "histogram"
)

// Registry holds named metric families. The zero value is not usable;
// call NewRegistry. All methods are safe for concurrent use.
//
// Registration is idempotent: registering a name that already exists
// with the same type and label names returns the existing family, so
// several subsystems can share one registry without coordinating
// start-up order. A type or label mismatch panics — that is a
// programming error, not a runtime condition.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string // registration order; snapshots sort by name
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// family is one named metric with zero or more labeled cells.
type family struct {
	name   string
	help   string
	typ    string
	labels []string  // label names, fixed at registration
	bounds []float64 // histogram bucket upper bounds (finite, ascending)
	fn     func() float64
	vecFn  func() []FuncCell

	mu    sync.Mutex
	cells map[string]*cell // key: label values joined with \xff
	keys  []string
}

// cell is one label combination's value. Counters use n; gauges use f;
// histograms use n (count), f (sum) and buckets (per-bound, non-cumulative).
type cell struct {
	labels  []string
	n       atomic.Int64
	f       atomicFloat
	buckets []atomic.Int64
}

// atomicFloat is a float64 with atomic add/store via CAS on the bit
// pattern.
type atomicFloat struct{ bits atomic.Uint64 }

func (a *atomicFloat) Load() float64   { return math.Float64frombits(a.bits.Load()) }
func (a *atomicFloat) Store(v float64) { a.bits.Store(math.Float64bits(v)) }

func (a *atomicFloat) Add(v float64) {
	for {
		old := a.bits.Load()
		nb := math.Float64bits(math.Float64frombits(old) + v)
		if a.bits.CompareAndSwap(old, nb) {
			return
		}
	}
}

const labelSep = "\xff"

func (r *Registry) register(name, help, typ string, labels []string, bounds []float64, fn func() float64, vecFn func() []FuncCell) *family {
	if name == "" {
		panic("obs: empty metric name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.typ != typ || !equalStrings(f.labels, labels) {
			panic(fmt.Sprintf("obs: metric %q re-registered with different type or labels", name))
		}
		return f
	}
	f := &family{
		name:   name,
		help:   help,
		typ:    typ,
		labels: labels,
		bounds: bounds,
		fn:     fn,
		vecFn:  vecFn,
		cells:  make(map[string]*cell),
	}
	r.families[name] = f
	r.order = append(r.order, name)
	return f
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func (f *family) cell(values []string) *cell {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, labelSep)
	f.mu.Lock()
	defer f.mu.Unlock()
	c, ok := f.cells[key]
	if !ok {
		c = &cell{labels: append([]string(nil), values...)}
		if f.typ == TypeHistogram {
			c.buckets = make([]atomic.Int64, len(f.bounds))
		}
		f.cells[key] = c
		f.keys = append(f.keys, key)
	}
	return c
}

// Counter is a monotonically increasing integer cell.
type Counter struct{ c *cell }

// Inc adds one.
func (c *Counter) Inc() { c.c.n.Add(1) }

// Add adds n; n must be non-negative (not enforced on the hot path).
func (c *Counter) Add(n int64) { c.c.n.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.c.n.Load() }

// Gauge is a float cell that can go up and down.
type Gauge struct{ c *cell }

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.c.f.Store(v) }

// Add adds v (may be negative).
func (g *Gauge) Add(v float64) { g.c.f.Add(v) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.c.f.Load() }

// Histogram is a cumulative histogram cell with fixed bucket bounds.
type Histogram struct {
	bounds []float64
	c      *cell
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.c.n.Add(1)
	h.c.f.Add(v)
	// Buckets are "count of samples <= bound"; stored per-bound and
	// accumulated at snapshot time.
	i := sort.SearchFloat64s(h.bounds, v)
	if i < len(h.bounds) {
		h.c.buckets[i].Add(1)
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.c.n.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return h.c.f.Load() }

// Counter registers (or finds) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(name, help, TypeCounter, nil, nil, nil, nil)
	return &Counter{c: f.cell(nil)}
}

// Gauge registers (or finds) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(name, help, TypeGauge, nil, nil, nil, nil)
	return &Gauge{c: f.cell(nil)}
}

// Histogram registers (or finds) an unlabeled histogram. bounds are the
// finite bucket upper limits in ascending order; the +Inf bucket is
// implicit.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if !sort.Float64sAreSorted(bounds) {
		panic(fmt.Sprintf("obs: histogram %q bounds not ascending", name))
	}
	f := r.register(name, help, TypeHistogram, nil, append([]float64(nil), bounds...), nil, nil)
	return &Histogram{bounds: f.bounds, c: f.cell(nil)}
}

// CounterVec is a counter family with a fixed set of label names.
type CounterVec struct{ f *family }

// CounterVec registers (or finds) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{f: r.register(name, help, TypeCounter, labels, nil, nil, nil)}
}

// With returns the cell for the given label values, creating it if new.
func (v *CounterVec) With(values ...string) *Counter {
	return &Counter{c: v.f.cell(values)}
}

// GaugeVec is a gauge family with a fixed set of label names.
type GaugeVec struct{ f *family }

// GaugeVec registers (or finds) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{f: r.register(name, help, TypeGauge, labels, nil, nil, nil)}
}

// With returns the cell for the given label values, creating it if new.
func (v *GaugeVec) With(values ...string) *Gauge {
	return &Gauge{c: v.f.cell(values)}
}

// HistogramVec is a histogram family with a fixed set of label names.
type HistogramVec struct{ f *family }

// HistogramVec registers (or finds) a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	if !sort.Float64sAreSorted(bounds) {
		panic(fmt.Sprintf("obs: histogram %q bounds not ascending", name))
	}
	return &HistogramVec{f: r.register(name, help, TypeHistogram, labels, append([]float64(nil), bounds...), nil, nil)}
}

// With returns the cell for the given label values, creating it if new.
func (v *HistogramVec) With(values ...string) *Histogram {
	return &Histogram{bounds: v.f.bounds, c: v.f.cell(values)}
}

// CounterFunc registers a counter whose value is read from fn at
// snapshot time. Use it to expose an existing monotonic source (for
// example the artifact cache's hit count) without double bookkeeping.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.register(name, help, TypeCounter, nil, nil, fn, nil)
}

// GaugeFunc registers a gauge whose value is read from fn at snapshot
// time. fn must be safe to call from any goroutine.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(name, help, TypeGauge, nil, nil, fn, nil)
}

// FuncCell is one label combination's value as produced by a
// GaugeFuncVec collector.
type FuncCell struct {
	Values []string // one value per label name, in registration order
	Value  float64
}

// GaugeFuncVec registers a labeled gauge family whose cells are read
// from fn at snapshot time — the labeled analogue of GaugeFunc. The
// serve layer uses it to expose jobs-by-state straight from the live
// job table, so /metrics and /healthz can never drift apart. fn must be
// safe to call from any goroutine; cells are sorted deterministically
// at snapshot time regardless of fn's return order.
func (r *Registry) GaugeFuncVec(name, help string, labels []string, fn func() []FuncCell) {
	r.register(name, help, TypeGauge, labels, nil, nil, fn)
}

// Snapshot captures every family into a deterministic, immutable value:
// families sorted by name, cells sorted by label values. Func-backed
// families are evaluated now.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	byName := make(map[string]*family, len(names))
	for _, n := range names {
		byName[n] = r.families[n]
	}
	r.mu.Unlock()
	sort.Strings(names)

	var snap Snapshot
	for _, name := range names {
		f := byName[name]
		fam := Family{Name: f.name, Help: f.help, Type: f.typ}
		if f.fn != nil {
			fam.Cells = []Cell{{Value: f.fn()}}
			snap.Families = append(snap.Families, fam)
			continue
		}
		if f.vecFn != nil {
			fcs := f.vecFn()
			sort.Slice(fcs, func(i, j int) bool {
				return strings.Join(fcs[i].Values, labelSep) < strings.Join(fcs[j].Values, labelSep)
			})
			for _, fc := range fcs {
				var sc Cell
				for i, lv := range fc.Values {
					sc.Labels = append(sc.Labels, Label{Name: f.labels[i], Value: lv})
				}
				sc.Value = fc.Value
				fam.Cells = append(fam.Cells, sc)
			}
			snap.Families = append(snap.Families, fam)
			continue
		}
		f.mu.Lock()
		keys := append([]string(nil), f.keys...)
		cells := make([]*cell, len(keys))
		for i, k := range keys {
			cells[i] = f.cells[k]
		}
		f.mu.Unlock()
		sort.Sort(&cellSorter{keys: keys, cells: cells})
		for _, c := range cells {
			var sc Cell
			for i, lv := range c.labels {
				sc.Labels = append(sc.Labels, Label{Name: f.labels[i], Value: lv})
			}
			switch f.typ {
			case TypeCounter:
				sc.Value = float64(c.n.Load())
			case TypeGauge:
				sc.Value = c.f.Load()
			case TypeHistogram:
				sc.Count = c.n.Load()
				sc.Sum = c.f.Load()
				var cum int64
				for i, b := range f.bounds {
					cum += c.buckets[i].Load()
					sc.Buckets = append(sc.Buckets, Bucket{LE: b, Count: cum})
				}
			}
			fam.Cells = append(fam.Cells, sc)
		}
		snap.Families = append(snap.Families, fam)
	}
	return snap
}

type cellSorter struct {
	keys  []string
	cells []*cell
}

func (s *cellSorter) Len() int           { return len(s.keys) }
func (s *cellSorter) Less(i, j int) bool { return s.keys[i] < s.keys[j] }
func (s *cellSorter) Swap(i, j int) {
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
	s.cells[i], s.cells[j] = s.cells[j], s.cells[i]
}
