package lint

import (
	"strings"
	"testing"

	"repro/comptest"
	"repro/internal/paper"
	"repro/internal/workbooks"
)

func findings(t *testing.T, workbook string) []Finding {
	t.Helper()
	suite, err := comptest.LoadSuiteString(workbook)
	if err != nil {
		t.Fatal(err)
	}
	return Check(suite.Signals, suite.Statuses, suite.Tests)
}

func hasCode(fs []Finding, code, substr string) bool {
	for _, f := range fs {
		if f.Code == code && strings.Contains(f.Msg, substr) {
			return true
		}
	}
	return false
}

func TestPaperWorkbookFindings(t *testing.T) {
	fs := findings(t, paper.Workbook)
	// The paper's own table has real, documented gaps:
	// the rear door switches are never stimulated by the test…
	if !hasCode(fs, "unstimulated-input", "DS_RL") || !hasCode(fs, "unstimulated-input", "DS_RR") {
		t.Errorf("rear door coverage gap not flagged: %v", fs)
	}
	// …DS_FR is toggled, DS_FL is toggled, so neither is flagged as
	// never-toggled…
	if hasCode(fs, "never-toggled", "DS_FL") || hasCode(fs, "never-toggled", "DS_FR") {
		t.Errorf("toggled doors incorrectly flagged: %v", fs)
	}
	// …and IGN_ST stays Off for the whole test.
	if !hasCode(fs, "never-toggled", "IGN_ST") {
		t.Errorf("constant IGN_ST not flagged: %v", fs)
	}
}

func TestCleanColumnsNotFlagged(t *testing.T) {
	fs := findings(t, paper.Workbook)
	if hasCode(fs, "empty-column", "") {
		t.Errorf("paper workbook has no empty columns, got: %v", fs)
	}
	if hasCode(fs, "unused-status", "") {
		t.Errorf("paper workbook uses every status, got: %v", fs)
	}
	if hasCode(fs, "missing-init", "") {
		t.Errorf("paper workbook inits every input, got: %v", fs)
	}
}

func TestOtherWorkbooksReasonablyClean(t *testing.T) {
	for _, wb := range []string{workbooks.CentralLocking, workbooks.WindowLifter, workbooks.ExteriorLight} {
		for _, f := range Warnings(findings(t, wb)) {
			switch f.Code {
			case "unstimulated-input", "never-toggled", "unmeasured-output":
				// Acceptable residual coverage notes.
			default:
				t.Errorf("unexpected warning in workbook: %v", f)
			}
		}
	}
}

func TestUnusedStatusDetected(t *testing.T) {
	fs := findings(t, `== SignalDefinition ==
signal;direction;class;pin;init
A;in;digital;A;Released
B;out;analog;B;
== StatusDefinition ==
status;method;attribut;var (x);nom;min;max
Pressed;put_r;r;;0;;;
Released;put_r;r;;INF;;;
Ghost;put_r;r;;100;;;
MotOn;get_u;u;UBATT;1;0,7;1,1
== Test_T ==
test step;dt;A;B
0;1;Pressed;MotOn
`)
	if !hasCode(fs, "unused-status", "Ghost") {
		t.Errorf("unused status not flagged: %v", fs)
	}
	if hasCode(fs, "unused-status", "Released") {
		t.Errorf("init-only status flagged as unused: %v", fs)
	}
}

func TestMissingInitAndCoverage(t *testing.T) {
	fs := findings(t, `== SignalDefinition ==
signal;direction;class;pin;init
A;in;digital;A;
OUT1;out;analog;O1;
OUT2;out;analog;O2;
== StatusDefinition ==
status;method;attribut;var (x);nom;min;max
Pressed;put_r;r;;0;;;
MotOn;get_u;u;UBATT;1;0,7;1,1
== Test_T ==
test step;dt;A;OUT1
0;1;Pressed;MotOn
`)
	if !hasCode(fs, "missing-init", "A") {
		t.Errorf("missing init not flagged: %v", fs)
	}
	if !hasCode(fs, "unmeasured-output", "OUT2") {
		t.Errorf("unmeasured output not flagged: %v", fs)
	}
	if hasCode(fs, "unmeasured-output", "OUT1") {
		t.Errorf("measured output flagged: %v", fs)
	}
}

func TestEmptyColumn(t *testing.T) {
	fs := findings(t, `== SignalDefinition ==
signal;direction;class;pin;init
A;in;digital;A;Pressed
B;in;digital;B;Pressed
== StatusDefinition ==
status;method;attribut;var (x);nom;min;max
Pressed;put_r;r;;0;;;
== Test_T ==
test step;dt;A;B
0;1;Pressed;
`)
	if !hasCode(fs, "empty-column", `"B"`) {
		t.Errorf("empty column not flagged: %v", fs)
	}
}

func TestLimitSanity(t *testing.T) {
	fs := findings(t, `== SignalDefinition ==
signal;direction;class;pin;init
O;out;analog;O;
I;in;digital;I;Stim
== StatusDefinition ==
status;method;attribut;var (x);nom;min;max
Bad;get_u;u;;1;5;2
Flat;get_u;u;;1;3;3
Stim;put_r;r;;0;;;
== Test_T ==
test step;dt;O;I
0;1;Bad;Stim
1;1;Flat;
`)
	if !hasCode(fs, "inverted-limits", "Bad") {
		t.Errorf("inverted limits not flagged: %v", fs)
	}
	if !hasCode(fs, "degenerate-limits", "Flat") {
		t.Errorf("degenerate limits not flagged: %v", fs)
	}
}

func TestLongTestInfo(t *testing.T) {
	fs := findings(t, paper.Workbook)
	// 309 s is under the 600 s threshold: no long-test info.
	if hasCode(fs, "long-test", "") {
		t.Errorf("309 s test flagged as long: %v", fs)
	}
	fs = findings(t, `== SignalDefinition ==
signal;direction;class;pin;init
I;in;digital;I;Stim
== StatusDefinition ==
status;method;attribut;var (x);nom;min;max
Stim;put_r;r;;0;;;
== Test_T ==
test step;dt;I
0;700;Stim
`)
	if !hasCode(fs, "long-test", "T") {
		t.Errorf("700 s test not flagged: %v", fs)
	}
}

func TestWarningsFilterAndStrings(t *testing.T) {
	fs := []Finding{
		{Severity: Info, Code: "a", Msg: "x"},
		{Severity: Warning, Code: "b", Msg: "y"},
	}
	w := Warnings(fs)
	if len(w) != 1 || w[0].Code != "b" {
		t.Errorf("Warnings = %v", w)
	}
	if fs[0].String() != "info a: x" || fs[1].String() != "warning b: y" {
		t.Errorf("String() = %q / %q", fs[0], fs[1])
	}
	if Info.String() != "info" || Warning.String() != "warning" {
		t.Error("Severity.String() wrong")
	}
}

func TestWarningsSortedFirst(t *testing.T) {
	fs := findings(t, paper.Workbook)
	seenInfo := false
	for _, f := range fs {
		if f.Severity == Info {
			seenInfo = true
		}
		if seenInfo && f.Severity == Warning {
			t.Fatalf("warnings not sorted before infos: %v", fs)
		}
	}
}

func TestCoverageGaps(t *testing.T) {
	fs := findings(t, paper.Workbook)
	gaps := CoverageGaps(fs)
	if len(gaps) == 0 {
		t.Fatal("paper workbook yields no coverage gaps")
	}
	for _, g := range gaps {
		switch g.Code {
		case "unstimulated-input", "unmeasured-output", "never-toggled", "empty-column":
		default:
			t.Errorf("non-coverage finding %q classified as gap", g.Code)
		}
	}
	// The paper table's canonical gaps: the rear doors are never
	// stimulated — the reason the only_fl mutant survives.
	if !hasCode(gaps, "unstimulated-input", "DS_RL") || !hasCode(gaps, "unstimulated-input", "DS_RR") {
		t.Errorf("rear-door gaps missing from %v", gaps)
	}
	// Limit findings are quality issues, not coverage gaps.
	mixed := append(gaps, Finding{Severity: Warning, Code: "inverted-limits", Msg: `status "X" has min 2 above max 1`})
	if n := len(CoverageGaps(mixed)); n != len(gaps) {
		t.Errorf("inverted-limits leaked into gaps (%d != %d)", n, len(gaps))
	}
}

func TestFindingMentions(t *testing.T) {
	f := Finding{Severity: Warning, Code: "unstimulated-input", Msg: `input signal "DS_RL" is never stimulated by any test`}
	if !f.Mentions("DS_RL") || !f.Mentions("ds_rl") {
		t.Error("Mentions misses the quoted signal")
	}
	// Unquoted substrings must not match: "DS_R" is not a signal here.
	if f.Mentions("DS_R") || f.Mentions("DS_RR") {
		t.Error("Mentions matched a non-mentioned signal")
	}
}
