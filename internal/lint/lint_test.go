package lint

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/paper"
	"repro/internal/workbooks"
)

func findings(t *testing.T, workbook string) []Finding {
	t.Helper()
	suite, err := core.LoadSuiteString(workbook)
	if err != nil {
		t.Fatal(err)
	}
	return Check(suite.Signals, suite.Statuses, suite.Tests)
}

func hasCode(fs []Finding, code, substr string) bool {
	for _, f := range fs {
		if f.Code == code && strings.Contains(f.Msg, substr) {
			return true
		}
	}
	return false
}

func TestPaperWorkbookFindings(t *testing.T) {
	fs := findings(t, paper.Workbook)
	// The paper's own table has real, documented gaps:
	// the rear door switches are never stimulated by the test…
	if !hasCode(fs, "unstimulated-input", "DS_RL") || !hasCode(fs, "unstimulated-input", "DS_RR") {
		t.Errorf("rear door coverage gap not flagged: %v", fs)
	}
	// …DS_FR is toggled, DS_FL is toggled, so neither is flagged as
	// never-toggled…
	if hasCode(fs, "never-toggled", "DS_FL") || hasCode(fs, "never-toggled", "DS_FR") {
		t.Errorf("toggled doors incorrectly flagged: %v", fs)
	}
	// …and IGN_ST stays Off for the whole test.
	if !hasCode(fs, "never-toggled", "IGN_ST") {
		t.Errorf("constant IGN_ST not flagged: %v", fs)
	}
}

func TestCleanColumnsNotFlagged(t *testing.T) {
	fs := findings(t, paper.Workbook)
	if hasCode(fs, "empty-column", "") {
		t.Errorf("paper workbook has no empty columns, got: %v", fs)
	}
	if hasCode(fs, "unused-status", "") {
		t.Errorf("paper workbook uses every status, got: %v", fs)
	}
	if hasCode(fs, "missing-init", "") {
		t.Errorf("paper workbook inits every input, got: %v", fs)
	}
}

func TestOtherWorkbooksReasonablyClean(t *testing.T) {
	for _, wb := range []string{workbooks.CentralLocking, workbooks.WindowLifter, workbooks.ExteriorLight} {
		for _, f := range Warnings(findings(t, wb)) {
			switch f.Code {
			case "unstimulated-input", "never-toggled", "unmeasured-output":
				// Acceptable residual coverage notes.
			default:
				t.Errorf("unexpected warning in workbook: %v", f)
			}
		}
	}
}

func TestUnusedStatusDetected(t *testing.T) {
	fs := findings(t, `== SignalDefinition ==
signal;direction;class;pin;init
A;in;digital;A;Released
B;out;analog;B;
== StatusDefinition ==
status;method;attribut;var (x);nom;min;max
Pressed;put_r;r;;0;;;
Released;put_r;r;;INF;;;
Ghost;put_r;r;;100;;;
MotOn;get_u;u;UBATT;1;0,7;1,1
== Test_T ==
test step;dt;A;B
0;1;Pressed;MotOn
`)
	if !hasCode(fs, "unused-status", "Ghost") {
		t.Errorf("unused status not flagged: %v", fs)
	}
	if hasCode(fs, "unused-status", "Released") {
		t.Errorf("init-only status flagged as unused: %v", fs)
	}
}

func TestMissingInitAndCoverage(t *testing.T) {
	fs := findings(t, `== SignalDefinition ==
signal;direction;class;pin;init
A;in;digital;A;
OUT1;out;analog;O1;
OUT2;out;analog;O2;
== StatusDefinition ==
status;method;attribut;var (x);nom;min;max
Pressed;put_r;r;;0;;;
MotOn;get_u;u;UBATT;1;0,7;1,1
== Test_T ==
test step;dt;A;OUT1
0;1;Pressed;MotOn
`)
	if !hasCode(fs, "missing-init", "A") {
		t.Errorf("missing init not flagged: %v", fs)
	}
	if !hasCode(fs, "unmeasured-output", "OUT2") {
		t.Errorf("unmeasured output not flagged: %v", fs)
	}
	if hasCode(fs, "unmeasured-output", "OUT1") {
		t.Errorf("measured output flagged: %v", fs)
	}
}

func TestEmptyColumn(t *testing.T) {
	fs := findings(t, `== SignalDefinition ==
signal;direction;class;pin;init
A;in;digital;A;Pressed
B;in;digital;B;Pressed
== StatusDefinition ==
status;method;attribut;var (x);nom;min;max
Pressed;put_r;r;;0;;;
== Test_T ==
test step;dt;A;B
0;1;Pressed;
`)
	if !hasCode(fs, "empty-column", `"B"`) {
		t.Errorf("empty column not flagged: %v", fs)
	}
}

func TestLimitSanity(t *testing.T) {
	fs := findings(t, `== SignalDefinition ==
signal;direction;class;pin;init
O;out;analog;O;
I;in;digital;I;Stim
== StatusDefinition ==
status;method;attribut;var (x);nom;min;max
Bad;get_u;u;;1;5;2
Flat;get_u;u;;1;3;3
Stim;put_r;r;;0;;;
== Test_T ==
test step;dt;O;I
0;1;Bad;Stim
1;1;Flat;
`)
	if !hasCode(fs, "inverted-limits", "Bad") {
		t.Errorf("inverted limits not flagged: %v", fs)
	}
	if !hasCode(fs, "degenerate-limits", "Flat") {
		t.Errorf("degenerate limits not flagged: %v", fs)
	}
}

func TestLongTestInfo(t *testing.T) {
	fs := findings(t, paper.Workbook)
	// 309 s is under the 600 s threshold: no long-test info.
	if hasCode(fs, "long-test", "") {
		t.Errorf("309 s test flagged as long: %v", fs)
	}
	fs = findings(t, `== SignalDefinition ==
signal;direction;class;pin;init
I;in;digital;I;Stim
== StatusDefinition ==
status;method;attribut;var (x);nom;min;max
Stim;put_r;r;;0;;;
== Test_T ==
test step;dt;I
0;700;Stim
`)
	if !hasCode(fs, "long-test", "T") {
		t.Errorf("700 s test not flagged: %v", fs)
	}
}

func TestWarningsFilterAndStrings(t *testing.T) {
	fs := []Finding{{Info, "a", "x"}, {Warning, "b", "y"}}
	w := Warnings(fs)
	if len(w) != 1 || w[0].Code != "b" {
		t.Errorf("Warnings = %v", w)
	}
	if fs[0].String() != "info a: x" || fs[1].String() != "warning b: y" {
		t.Errorf("String() = %q / %q", fs[0], fs[1])
	}
	if Info.String() != "info" || Warning.String() != "warning" {
		t.Error("Severity.String() wrong")
	}
}

func TestWarningsSortedFirst(t *testing.T) {
	fs := findings(t, paper.Workbook)
	seenInfo := false
	for _, f := range fs {
		if f.Severity == Info {
			seenInfo = true
		}
		if seenInfo && f.Severity == Warning {
			t.Fatalf("warnings not sorted before infos: %v", fs)
		}
	}
}
