// Package lint performs quality checks on component-test workbooks that
// go beyond hard validation: coverage gaps, dead definitions and
// suspicious constructs. The paper's core problem — "the written
// requirements for the components are normally incomplete" — makes such
// findings valuable: the only_fl mutant of EXPERIMENTS.md C2 survives
// the paper's table precisely because of a coverage gap lint can flag.
package lint

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/method"
	"repro/internal/sigdef"
	"repro/internal/status"
	"repro/internal/testdef"
	"repro/internal/unit"
)

// Severity ranks findings.
type Severity int

const (
	// Info findings are observations.
	Info Severity = iota
	// Warning findings indicate probable quality problems.
	Warning
)

// String implements fmt.Stringer.
func (s Severity) String() string {
	if s == Warning {
		return "warning"
	}
	return "info"
}

// Finding is one lint result.
type Finding struct {
	Severity Severity
	// Code is the stable check identifier (e.g. "unused-status").
	Code string
	// Msg is the human-readable description.
	Msg string
}

// String renders "severity code: msg".
func (f Finding) String() string {
	return fmt.Sprintf("%s %s: %s", f.Severity, f.Code, f.Msg)
}

// Check runs every lint rule over a cross-validated suite.
func Check(sigs *sigdef.List, tbl *status.Table, tests []*testdef.TestCase) []Finding {
	var out []Finding
	out = append(out, checkUnusedStatuses(sigs, tbl, tests)...)
	out = append(out, checkSignalCoverage(sigs, tests)...)
	out = append(out, checkMissingInit(sigs)...)
	out = append(out, checkEmptyColumns(tests)...)
	out = append(out, checkLimitSanity(tbl)...)
	out = append(out, checkDuration(tests)...)
	out = append(out, checkNeverToggled(sigs, tests)...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Severity > out[j].Severity })
	return out
}

// coverageGapCodes are the finding codes that indicate the test suite
// fails to exercise part of the DUT interface — the findings that
// explain why a requirement mutant can survive the suite.
var coverageGapCodes = map[string]bool{
	"unstimulated-input": true,
	"unmeasured-output":  true,
	"never-toggled":      true,
	"empty-column":       true,
}

// CoverageGaps filters the findings to coverage gaps: signals the suite
// never stimulates, never toggles or never measures. The mutation
// subsystem cites these to explain surviving mutants (the only_fl
// mutant survives the paper's table because DS_RL/DS_RR are
// unstimulated-input findings).
func CoverageGaps(fs []Finding) []Finding {
	var out []Finding
	for _, f := range fs {
		if coverageGapCodes[f.Code] {
			out = append(out, f)
		}
	}
	return out
}

// Mentions reports whether the finding's message names the signal. Lint
// messages always quote signal names, so the match is on the quoted,
// case-folded form and cannot fire on a substring of a longer name.
func (f Finding) Mentions(signal string) bool {
	return strings.Contains(strings.ToLower(f.Msg), strings.ToLower(`"`+signal+`"`))
}

// Warnings filters the findings to warnings only.
func Warnings(fs []Finding) []Finding {
	var out []Finding
	for _, f := range fs {
		if f.Severity == Warning {
			out = append(out, f)
		}
	}
	return out
}

// checkUnusedStatuses flags statuses no test or init references.
func checkUnusedStatuses(sigs *sigdef.List, tbl *status.Table, tests []*testdef.TestCase) []Finding {
	used := map[string]bool{}
	for _, sig := range sigs.Signals() {
		if sig.Init != "" {
			used[strings.ToLower(sig.Init)] = true
		}
	}
	for _, tc := range tests {
		for _, st := range tc.UsedStatuses() {
			used[strings.ToLower(st)] = true
		}
	}
	var out []Finding
	for _, name := range tbl.Names() {
		if !used[strings.ToLower(name)] {
			out = append(out, Finding{Warning, "unused-status",
				fmt.Sprintf("status %q is defined but never used", name)})
		}
	}
	return out
}

// checkSignalCoverage flags outputs never measured and inputs never
// stimulated by any test (the init block does not count as coverage).
func checkSignalCoverage(sigs *sigdef.List, tests []*testdef.TestCase) []Finding {
	touched := map[string]bool{}
	for _, tc := range tests {
		for _, step := range tc.Steps {
			for _, a := range step.Assign {
				touched[strings.ToLower(a.Signal)] = true
			}
		}
	}
	var out []Finding
	for _, sig := range sigs.Signals() {
		if touched[strings.ToLower(sig.Name)] {
			continue
		}
		switch sig.Direction {
		case sigdef.Out:
			out = append(out, Finding{Warning, "unmeasured-output",
				fmt.Sprintf("output signal %q is never measured by any test", sig.Name)})
		case sigdef.In:
			out = append(out, Finding{Warning, "unstimulated-input",
				fmt.Sprintf("input signal %q is never stimulated by any test", sig.Name)})
		}
	}
	return out
}

// checkMissingInit flags inputs without an initial status — their state
// before step 0 is undefined on a real stand.
func checkMissingInit(sigs *sigdef.List) []Finding {
	var out []Finding
	for _, sig := range sigs.Inputs() {
		if strings.TrimSpace(sig.Init) == "" {
			out = append(out, Finding{Warning, "missing-init",
				fmt.Sprintf("input signal %q has no initial status", sig.Name)})
		}
	}
	return out
}

// checkEmptyColumns flags test sheet columns that assign nothing.
func checkEmptyColumns(tests []*testdef.TestCase) []Finding {
	var out []Finding
	for _, tc := range tests {
		for _, sig := range tc.Signals {
			found := false
			for _, step := range tc.Steps {
				if _, ok := step.Lookup(sig); ok {
					found = true
					break
				}
			}
			if !found {
				out = append(out, Finding{Warning, "empty-column",
					fmt.Sprintf("test %q lists signal %q but never assigns it", tc.Name, sig)})
			}
		}
	}
	return out
}

// checkLimitSanity flags measurement statuses whose absolute limits are
// inverted or degenerate.
func checkLimitSanity(tbl *status.Table) []Finding {
	var out []Finding
	for _, st := range tbl.Statuses() {
		if !st.Desc.IsMeasure() || st.Desc.Attr(st.Desc.RangeAttr) != nil &&
			st.Desc.Attr(st.Desc.RangeAttr).Kind == method.Bits {
			continue
		}
		lo, err1 := unit.ParseNumber(st.Min)
		hi, err2 := unit.ParseNumber(st.Max)
		if err1 != nil || err2 != nil {
			continue // expressions: checked at evaluation time
		}
		switch {
		case lo > hi:
			out = append(out, Finding{Warning, "inverted-limits",
				fmt.Sprintf("status %q has min %v above max %v", st.Name, lo, hi)})
		case lo == hi:
			out = append(out, Finding{Warning, "degenerate-limits",
				fmt.Sprintf("status %q has a zero-width tolerance band at %v", st.Name, lo)})
		}
	}
	return out
}

// checkDuration reports unusually long tests (informational).
func checkDuration(tests []*testdef.TestCase) []Finding {
	var out []Finding
	for _, tc := range tests {
		if d := tc.Duration(); d > 600 {
			out = append(out, Finding{Info, "long-test",
				fmt.Sprintf("test %q runs %.0f s nominal; consider splitting", tc.Name, d)})
		}
	}
	return out
}

// checkNeverToggled flags inputs that are assigned but always with the
// same status — they never change state, so the tests cannot observe the
// DUT's reaction to them (the root of the paper table's only_fl gap: the
// rear doors are never opened).
func checkNeverToggled(sigs *sigdef.List, tests []*testdef.TestCase) []Finding {
	values := map[string]map[string]bool{}
	for _, tc := range tests {
		for _, step := range tc.Steps {
			for _, a := range step.Assign {
				key := strings.ToLower(a.Signal)
				if values[key] == nil {
					values[key] = map[string]bool{}
				}
				values[key][strings.ToLower(a.Status)] = true
			}
		}
	}
	var out []Finding
	for _, sig := range sigs.Inputs() {
		vs := values[strings.ToLower(sig.Name)]
		if len(vs) != 1 {
			continue
		}
		only := ""
		for v := range vs {
			only = v
		}
		// Re-assigning exactly the initial status means the input never
		// leaves its resting state at all.
		note := ""
		if strings.EqualFold(only, sig.Init) {
			note = " (and it equals the initial status)"
		}
		out = append(out, Finding{Warning, "never-toggled",
			fmt.Sprintf("input signal %q is only ever assigned status %q%s", sig.Name, only, note)})
	}
	return out
}
