// Package lint performs quality checks on component-test workbooks that
// go beyond hard validation: coverage gaps, dead definitions and
// suspicious constructs. The paper's core problem — "the written
// requirements for the components are normally incomplete" — makes such
// findings valuable: the only_fl mutant of EXPERIMENTS.md C2 survives
// the paper's table precisely because of a coverage gap lint can flag.
//
// The package is organised as a pluggable analyzer framework modeled on
// go/analysis: each check is an Analyzer with a stable name (the finding
// code), a default severity and a Run function over a Pass. Analyzers
// register themselves in a package-level registry; Run executes a
// selection of them over a Suite and returns position-annotated
// findings. Check is the legacy flat entry point kept for the mutation
// and exploration subsystems.
package lint

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"repro/internal/sigdef"
	"repro/internal/status"
	"repro/internal/testdef"
)

// Severity ranks findings.
type Severity int

const (
	// Info findings are observations.
	Info Severity = iota
	// Warning findings indicate probable quality problems.
	Warning
	// Error findings indicate defects that make checks meaningless or
	// unreachable; comptest vet exits nonzero on fresh errors.
	Error
)

// String implements fmt.Stringer.
func (s Severity) String() string {
	switch s {
	case Error:
		return "error"
	case Warning:
		return "warning"
	}
	return "info"
}

// ParseSeverity parses "info", "warning" or "error".
func ParseSeverity(s string) (Severity, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "info":
		return Info, nil
	case "warning", "warn":
		return Warning, nil
	case "error":
		return Error, nil
	}
	return Info, fmt.Errorf("lint: unknown severity %q (want info, warning or error)", s)
}

// MarshalJSON renders the severity as its lower-case name.
func (s Severity) MarshalJSON() ([]byte, error) {
	return json.Marshal(s.String())
}

// UnmarshalJSON parses the lower-case severity name.
func (s *Severity) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err != nil {
		return err
	}
	sev, err := ParseSeverity(name)
	if err != nil {
		return err
	}
	*s = sev
	return nil
}

// Pos locates a finding inside a workbook. Row and Col are 1-based sheet
// coordinates; Line is the 1-based line of the workbook source file
// (0 when the sheet was built programmatically). The zero Pos means
// "whole suite".
type Pos struct {
	Sheet string `json:"sheet,omitempty"`
	Row   int    `json:"row,omitempty"`
	Col   int    `json:"col,omitempty"`
	Line  int    `json:"line,omitempty"`
}

// IsZero reports whether the position carries no location at all.
func (p Pos) IsZero() bool { return p == Pos{} }

// String renders "Sheet row N" (with optional column), or "".
func (p Pos) String() string {
	if p.Sheet == "" {
		return ""
	}
	s := p.Sheet
	if p.Row > 0 {
		s += fmt.Sprintf(" row %d", p.Row)
	}
	if p.Col > 0 {
		s += fmt.Sprintf(" col %d", p.Col)
	}
	return s
}

// Finding is one lint result.
type Finding struct {
	Severity Severity `json:"severity"`
	// Code is the stable check identifier (e.g. "unused-status"); it
	// equals the name of the analyzer that produced the finding.
	Code string `json:"code"`
	// Msg is the human-readable description.
	Msg string `json:"msg"`
	// Pos anchors the finding in the workbook (zero when unknown).
	Pos Pos `json:"pos,omitzero"`
}

// String renders "severity code: msg".
func (f Finding) String() string {
	return fmt.Sprintf("%s %s: %s", f.Severity, f.Code, f.Msg)
}

// Mentions reports whether the finding's message names the signal. Lint
// messages always quote signal names, so the match is on the quoted,
// case-folded form and cannot fire on a substring of a longer name.
func (f Finding) Mentions(signal string) bool {
	return strings.Contains(strings.ToLower(f.Msg), strings.ToLower(`"`+signal+`"`))
}

// Check runs the classic lint rules over a cross-validated suite. It is
// the stable legacy surface consumed by the mutation and exploration
// subsystems: positions are filled in, but only the original analyzer
// set runs (no stand or kill-matrix context is available here — use Run
// with a full Suite for the cross-artifact analyzers).
func Check(sigs *sigdef.List, tbl *status.Table, tests []*testdef.TestCase) []Finding {
	s := &Suite{Signals: sigs, Statuses: tbl, Tests: tests}
	var out []Finding
	for _, name := range legacyAnalyzers {
		a := lookupAnalyzer(name)
		p := &Pass{Suite: s, analyzer: a}
		a.Run(p)
		out = append(out, p.findings...)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Severity > out[j].Severity })
	return out
}

// coverageGapCodes are the finding codes that indicate the test suite
// fails to exercise part of the DUT interface — the findings that
// explain why a requirement mutant can survive the suite.
var coverageGapCodes = map[string]bool{
	"unstimulated-input": true,
	"unmeasured-output":  true,
	"never-toggled":      true,
	"empty-column":       true,
}

// CoverageGaps filters the findings to coverage gaps: signals the suite
// never stimulates, never toggles or never measures. The mutation
// subsystem cites these to explain surviving mutants (the only_fl
// mutant survives the paper's table because DS_RL/DS_RR are
// unstimulated-input findings).
func CoverageGaps(fs []Finding) []Finding {
	var out []Finding
	for _, f := range fs {
		if coverageGapCodes[f.Code] {
			out = append(out, f)
		}
	}
	return out
}

// Warnings filters the findings to warnings and errors.
func Warnings(fs []Finding) []Finding {
	var out []Finding
	for _, f := range fs {
		if f.Severity >= Warning {
			out = append(out, f)
		}
	}
	return out
}
