package lint

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/expr"
	"repro/internal/sheet"
	"repro/internal/sigdef"
	"repro/internal/status"
	"repro/internal/testdef"
)

// Analyzer is one registered lint check, modeled on go/analysis: the
// Name doubles as the stable finding code, Doc describes the defect
// class, Severity is the severity of every finding the analyzer emits.
type Analyzer struct {
	// Name is the stable identifier, e.g. "unused-status". It is the
	// Code of every finding the analyzer reports.
	Name string
	// Doc is a one-paragraph description of what the analyzer flags.
	Doc string
	// Severity classifies the analyzer's findings.
	Severity Severity
	// Run inspects the pass's suite and reports findings on it.
	Run func(*Pass)
}

// LimitEnv is one named expression environment measurement limits are
// evaluated against (typically one per stand profile, e.g.
// {"ubatt": 12} for paper_stand).
type LimitEnv struct {
	Name string
	Env  expr.Env
}

// DefaultSettleTime mirrors the stand default: measurements scheduled
// closer to a stimulus than this are suspect (see stand.Config).
const DefaultSettleTime = 100 * time.Millisecond

// DefaultLimitEnvs is the environment set used when a Suite names none:
// the supply voltage of the standard bench profiles (12 V) and of the
// HIL rack (13.5 V).
func DefaultLimitEnvs() []LimitEnv {
	return []LimitEnv{
		{Name: "ubatt=12", Env: expr.MapEnv{"ubatt": 12}},
		{Name: "ubatt=13.5", Env: expr.MapEnv{"ubatt": 13.5}},
	}
}

// Suite is the analysis input: the cross-validated workbook artefacts
// plus optional context that enables the cross-artifact analyzers.
type Suite struct {
	Signals  *sigdef.List
	Statuses *status.Table
	Tests    []*testdef.TestCase

	// Workbook, when set, enables per-row suppression directives: a
	// cell containing "lint:ignore CODE[,CODE...]" suppresses findings
	// of those codes anchored at the same sheet row.
	Workbook *sheet.Workbook

	// SettleTime is the stand settle time used by settle-conflict
	// (DefaultSettleTime when zero).
	SettleTime time.Duration

	// Envs are the environments measurement limits are evaluated
	// against (DefaultLimitEnvs when nil).
	Envs []LimitEnv

	// Kills is the saved mutation kill matrix consulted by weak-check
	// (the analyzer is skipped when nil).
	Kills *KillMatrix
}

func (s *Suite) envs() []LimitEnv {
	if len(s.Envs) > 0 {
		return s.Envs
	}
	return DefaultLimitEnvs()
}

func (s *Suite) settleTime() time.Duration {
	if s.SettleTime > 0 {
		return s.SettleTime
	}
	return DefaultSettleTime
}

// Pass carries one analyzer's execution over one suite.
type Pass struct {
	*Suite
	analyzer *Analyzer
	findings []Finding
}

// Reportf records a finding at pos with the analyzer's severity and code.
func (p *Pass) Reportf(pos Pos, format string, args ...any) {
	p.findings = append(p.findings, Finding{
		Severity: p.analyzer.Severity,
		Code:     p.analyzer.Name,
		Msg:      fmt.Sprintf(format, args...),
		Pos:      pos,
	})
}

// ------------------------------------------------------------ registry --

var registry = map[string]*Analyzer{}

// Register adds an analyzer to the package registry. It panics on a
// duplicate or empty name — registration is an init-time programming
// contract, not a runtime condition.
func Register(a *Analyzer) {
	if a == nil || a.Name == "" {
		panic("lint: Register: analyzer without a name")
	}
	if _, dup := registry[a.Name]; dup {
		panic("lint: Register: duplicate analyzer " + a.Name)
	}
	if a.Run == nil {
		panic("lint: Register: analyzer " + a.Name + " has no Run")
	}
	registry[a.Name] = a
}

// Analyzers returns all registered analyzers sorted by name.
func Analyzers() []*Analyzer {
	out := make([]*Analyzer, 0, len(registry))
	for _, a := range registry {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func lookupAnalyzer(name string) *Analyzer {
	a, ok := registry[name]
	if !ok {
		panic("lint: unknown analyzer " + name)
	}
	return a
}

// ----------------------------------------------------------------- run --

// Options selects and filters analyzers for Run.
type Options struct {
	// Analyzers names the analyzers to run (all registered when empty).
	Analyzers []string
	// MinSeverity drops findings below the given severity.
	MinSeverity Severity
}

// Result is the outcome of one Run.
type Result struct {
	// Findings are the surviving findings in position order.
	Findings []Finding
	// Suppressed are findings silenced by lint:ignore directives.
	Suppressed []Finding
}

// MaxSeverity returns the highest severity among the findings, or
// (Info, false) when there are none.
func (r Result) MaxSeverity() (Severity, bool) {
	if len(r.Findings) == 0 {
		return Info, false
	}
	max := Info
	for _, f := range r.Findings {
		if f.Severity > max {
			max = f.Severity
		}
	}
	return max, true
}

// Run executes the selected analyzers over the suite, applies
// suppression directives, and returns the findings sorted by position
// (sheet, row, column, code, message) so output is byte-stable.
func Run(s *Suite, opts Options) (Result, error) {
	var as []*Analyzer
	if len(opts.Analyzers) == 0 {
		as = Analyzers()
	} else {
		for _, name := range opts.Analyzers {
			a, ok := registry[name]
			if !ok {
				return Result{}, fmt.Errorf("lint: unknown analyzer %q", name)
			}
			as = append(as, a)
		}
	}
	var all []Finding
	for _, a := range as {
		p := &Pass{Suite: s, analyzer: a}
		a.Run(p)
		all = append(all, p.findings...)
	}
	sup := suppressions(s.Workbook)
	var res Result
	for _, f := range all {
		if f.Severity < opts.MinSeverity {
			continue
		}
		if sup.covers(f) {
			res.Suppressed = append(res.Suppressed, f)
			continue
		}
		res.Findings = append(res.Findings, f)
	}
	sortFindings(res.Findings)
	sortFindings(res.Suppressed)
	return res, nil
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Sheet != b.Pos.Sheet {
			return a.Pos.Sheet < b.Pos.Sheet
		}
		if a.Pos.Row != b.Pos.Row {
			return a.Pos.Row < b.Pos.Row
		}
		if a.Pos.Col != b.Pos.Col {
			return a.Pos.Col < b.Pos.Col
		}
		if a.Code != b.Code {
			return a.Code < b.Code
		}
		return a.Msg < b.Msg
	})
}

// --------------------------------------------------------- suppression --

// IgnoreDirective is the marker a workbook cell uses to silence
// findings on its row: "lint:ignore CODE[,CODE...]".
const IgnoreDirective = "lint:ignore"

type suppressionSet map[string]map[string]bool // sheet "\x00" row -> codes

func suppressionKey(sheetName string, row int) string {
	return strings.ToLower(sheetName) + "\x00" + fmt.Sprint(row)
}

// suppressions scans every cell of the workbook for ignore directives.
func suppressions(wb *sheet.Workbook) suppressionSet {
	if wb == nil {
		return nil
	}
	set := suppressionSet{}
	for _, s := range wb.Sheets {
		for r := range s.Rows {
			for _, cell := range s.Rows[r] {
				i := strings.Index(cell, IgnoreDirective)
				if i < 0 {
					continue
				}
				rest := cell[i+len(IgnoreDirective):]
				// Codes run until the next whitespace-separated word
				// that is not part of the comma list.
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue
				}
				key := suppressionKey(s.Name, r+1)
				if set[key] == nil {
					set[key] = map[string]bool{}
				}
				for _, code := range strings.Split(fields[0], ",") {
					code = strings.ToLower(strings.TrimSpace(code))
					if code != "" {
						set[key][code] = true
					}
				}
			}
		}
	}
	return set
}

func (s suppressionSet) covers(f Finding) bool {
	if s == nil || f.Pos.Sheet == "" || f.Pos.Row == 0 {
		return false
	}
	codes := s[suppressionKey(f.Pos.Sheet, f.Pos.Row)]
	return codes[strings.ToLower(f.Code)]
}
