package lint

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/comptest"
	"repro/internal/report"
)

// suiteOf loads a workbook string into an analysis Suite.
func suiteOf(t *testing.T, workbook string) *Suite {
	t.Helper()
	s, err := comptest.LoadSuiteString(workbook)
	if err != nil {
		t.Fatal(err)
	}
	return &Suite{Signals: s.Signals, Statuses: s.Statuses, Tests: s.Tests, Workbook: s.Workbook}
}

func runAll(t *testing.T, s *Suite) Result {
	t.Helper()
	res, err := Run(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func findCode(fs []Finding, code string) []Finding {
	var out []Finding
	for _, f := range fs {
		if f.Code == code {
			out = append(out, f)
		}
	}
	return out
}

// crossWorkbook seeds one defect per cross-artifact analyzer.
const crossWorkbook = `== SignalDefinition ==
signal;direction;class;pin;init
SW;in;digital;SW;Released
LAMP;out;analog;LAMP;
== StatusDefinition ==
status;method;attribut;var (x);nom;min;max
Pressed;put_r;r;;0;;
Released;put_r;r;;INF;;
On;get_u;u;UBATT;1;0,7;1,1
Impossible;get_u;u;UBATT;1;1,2;0,7
== Test_Main ==
test step;dt;SW;LAMP;remarks
0;0,05;Pressed;On;settle conflict: dt below settle time
1;1;Released;
2;1;Released;;dead: re-applies the current stimulus
3;1;;Impossible;unreachable check
== Test_Copy ==
test step;dt;SW;LAMP
0;0,05;Pressed;On
1;1;Released;
2;1;Released;
3;1;;Impossible
`

func TestCrossAnalyzers(t *testing.T) {
	s := suiteOf(t, crossWorkbook)
	res := runAll(t, s)

	if fs := findCode(res.Findings, "unsatisfiable-limits"); len(fs) != 1 ||
		!strings.Contains(fs[0].Msg, `"Impossible"`) {
		t.Errorf("unsatisfiable-limits = %v", fs)
	} else {
		if fs[0].Severity != Error {
			t.Errorf("unsatisfiable-limits severity = %v, want error", fs[0].Severity)
		}
		if fs[0].Pos.Sheet != "StatusDefinition" || fs[0].Pos.Row != 5 {
			t.Errorf("unsatisfiable-limits pos = %+v", fs[0].Pos)
		}
	}
	// Both tests assign the impossible status once each.
	if fs := findCode(res.Findings, "unreachable-check"); len(fs) != 2 {
		t.Errorf("unreachable-check = %v", fs)
	} else if fs[0].Pos.Sheet != "Test_Copy" || fs[0].Pos.Row != 5 || fs[0].Pos.Col != 4 {
		// Findings sort by position, and Test_Copy < Test_Main.
		t.Errorf("unreachable-check pos = %+v", fs[0].Pos)
	}
	if fs := findCode(res.Findings, "dead-step"); len(fs) != 2 {
		t.Errorf("dead-step = %v (want one per test sheet)", fs)
	} else if !strings.Contains(fs[0].Msg, "step 2") {
		t.Errorf("dead-step msg = %q", fs[0].Msg)
	}
	if fs := findCode(res.Findings, "duplicate-scenario"); len(fs) != 1 ||
		!strings.Contains(fs[0].Msg, `"Copy" duplicates the step sequence of test "Main"`) {
		t.Errorf("duplicate-scenario = %v", fs)
	}
	if fs := findCode(res.Findings, "settle-conflict"); len(fs) != 2 {
		t.Errorf("settle-conflict = %v", fs)
	} else if !strings.Contains(fs[0].Msg, `"LAMP"`) {
		t.Errorf("settle-conflict msg = %q", fs[0].Msg)
	}
}

func TestSettleConflictUsesSuiteSettleTime(t *testing.T) {
	s := suiteOf(t, crossWorkbook)
	// With a 10 ms settle time the 50 ms step is fine.
	s.SettleTime = 10 * time.Millisecond
	res := runAll(t, s)
	if fs := findCode(res.Findings, "settle-conflict"); len(fs) != 0 {
		t.Errorf("settle-conflict under 10ms settle = %v", fs)
	}
}

func TestWeakCheckJoinsKillMatrix(t *testing.T) {
	s := suiteOf(t, crossWorkbook)
	res := runAll(t, s)
	if fs := findCode(res.Findings, "weak-check"); len(fs) != 0 {
		t.Errorf("weak-check without matrix = %v", fs)
	}

	// A matrix where only LAMP-independent checks killed: LAMP checks
	// are weak. Witness shape matches the mutation runner's.
	s.Kills = KillMatrixFromStrength(&report.Strength{DUTs: []report.DUTStrength{{
		DUT: "interior_light",
		Mutants: []report.MutantOutcome{
			{ID: "fault/x", Killed: true, Witness: "Main step 0: OTHER get_u expected [1 2], measured 0"},
			{ID: "fault/y", Killed: false},
		},
	}}})
	res = runAll(t, s)
	fs := findCode(res.Findings, "weak-check")
	if len(fs) != 2 { // one per test sheet
		t.Fatalf("weak-check = %v", fs)
	}
	if !strings.Contains(fs[0].Msg, `"LAMP"`) || !strings.Contains(fs[0].Msg, "1/2 mutants killed") {
		t.Errorf("weak-check msg = %q", fs[0].Msg)
	}
	if fs[0].Severity != Info {
		t.Errorf("weak-check severity = %v", fs[0].Severity)
	}

	// Once a LAMP witness exists the finding disappears.
	s.Kills = KillMatrixFromStrength(&report.Strength{DUTs: []report.DUTStrength{{
		Mutants: []report.MutantOutcome{
			{ID: "fault/x", Killed: true, Witness: "Main step 0: LAMP get_u expected [8.4 13.2], measured 0"},
		},
	}}})
	res = runAll(t, s)
	if fs := findCode(res.Findings, "weak-check"); len(fs) != 0 {
		t.Errorf("weak-check with LAMP kill = %v", fs)
	}
}

func TestSuppressionDirective(t *testing.T) {
	wb := strings.Replace(crossWorkbook,
		"2;1;Released;;dead: re-applies the current stimulus",
		"2;1;Released;;lint:ignore dead-step,settle-conflict deliberate soak", 1)
	s := suiteOf(t, wb)
	res := runAll(t, s)
	// Test_Main's dead-step is suppressed; Test_Copy's remains.
	fs := findCode(res.Findings, "dead-step")
	if len(fs) != 1 || fs[0].Pos.Sheet != "Test_Copy" {
		t.Errorf("dead-step after suppression = %v", fs)
	}
	sup := findCode(res.Suppressed, "dead-step")
	if len(sup) != 1 || sup[0].Pos.Sheet != "Test_Main" {
		t.Errorf("suppressed = %v", res.Suppressed)
	}
	// The directive names settle-conflict too, but on the wrong row —
	// row-scoped directives must not leak.
	if fs := findCode(res.Findings, "settle-conflict"); len(fs) != 2 {
		t.Errorf("settle-conflict wrongly suppressed: %v", fs)
	}
}

func TestRunSortsAndFilters(t *testing.T) {
	s := suiteOf(t, crossWorkbook)
	res, err := Run(s, Options{MinSeverity: Error})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range res.Findings {
		if f.Severity < Error {
			t.Errorf("finding below min severity: %v", f)
		}
	}
	res = runAll(t, s)
	for i := 1; i < len(res.Findings); i++ {
		a, b := res.Findings[i-1], res.Findings[i]
		if a.Pos.Sheet > b.Pos.Sheet {
			t.Fatalf("findings not sorted by sheet: %v before %v", a, b)
		}
		if a.Pos.Sheet == b.Pos.Sheet && a.Pos.Row > b.Pos.Row {
			t.Fatalf("findings not sorted by row: %v before %v", a, b)
		}
	}
	if max, ok := res.MaxSeverity(); !ok || max != Error {
		t.Errorf("MaxSeverity = %v, %v", max, ok)
	}
}

func TestRunUnknownAnalyzer(t *testing.T) {
	s := suiteOf(t, crossWorkbook)
	if _, err := Run(s, Options{Analyzers: []string{"no-such"}}); err == nil {
		t.Error("unknown analyzer accepted")
	}
}

func TestBaselineRatchet(t *testing.T) {
	s := suiteOf(t, crossWorkbook)
	res := runAll(t, s)
	base := NewBaseline(res.Findings)
	if fresh := base.Apply(res.Findings); len(fresh) != 0 {
		t.Errorf("full baseline leaves fresh findings: %v", fresh)
	}
	// Baseline keys ignore rows: moving a finding to another row stays
	// covered, a genuinely new finding does not.
	moved := make([]Finding, len(res.Findings))
	copy(moved, res.Findings)
	moved[0].Pos.Row += 10
	if fresh := base.Apply(moved); len(fresh) != 0 {
		t.Errorf("row move broke the baseline: %v", fresh)
	}
	extra := append(moved, Finding{Severity: Error, Code: "unreachable-check", Msg: "brand new"})
	if fresh := base.Apply(extra); len(fresh) != 1 || fresh[0].Msg != "brand new" {
		t.Errorf("fresh finding not isolated: %v", fresh)
	}

	// File round trip.
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := WriteBaselineFile(path, base); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBaselineFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if fresh := back.Apply(res.Findings); len(fresh) != 0 {
		t.Errorf("round-tripped baseline leaves fresh findings: %v", fresh)
	}
}

func TestJSONAndSARIFRender(t *testing.T) {
	s := suiteOf(t, crossWorkbook)
	res := runAll(t, s)
	rep := &Report{Workbooks: []WorkbookReport{{
		File: "cross.csw", Findings: res.Findings, Suppressed: len(res.Suppressed),
	}}}

	var buf bytes.Buffer
	if err := WriteJSON(&buf, rep); err != nil {
		t.Fatal(err)
	}
	var decoded Report
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("JSON round trip: %v", err)
	}
	if len(decoded.Workbooks) != 1 || len(decoded.Workbooks[0].Findings) != len(res.Findings) {
		t.Errorf("JSON round trip lost findings")
	}
	if decoded.Workbooks[0].Findings[0].Severity != res.Findings[0].Severity {
		t.Errorf("severity did not survive the round trip")
	}

	buf.Reset()
	if err := WriteSARIF(&buf, rep); err != nil {
		t.Fatal(err)
	}
	var sarif map[string]any
	if err := json.Unmarshal(buf.Bytes(), &sarif); err != nil {
		t.Fatalf("SARIF is not JSON: %v", err)
	}
	if v := sarif["version"]; v != "2.1.0" {
		t.Errorf("SARIF version = %v", v)
	}
	out := buf.String()
	for _, want := range []string{`"comptest vet"`, `"unreachable-check"`, `"cross.csw"`, `"startLine"`} {
		if !strings.Contains(out, want) {
			t.Errorf("SARIF lacks %s", want)
		}
	}

	buf.Reset()
	if err := WriteText(&buf, rep); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "cross.csw:") {
		t.Errorf("text output lacks file anchors:\n%s", buf.String())
	}
}

func TestPositionsThreadThrough(t *testing.T) {
	s := suiteOf(t, `== SignalDefinition ==
signal;direction;class;pin;init
A;in;digital;A;Pressed
GHOSTIN;in;digital;G;Pressed
== StatusDefinition ==
status;method;attribut;var (x);nom;min;max
Pressed;put_r;r;;0;;
Released;put_r;r;;INF;;
== Test_T ==
test step;dt;A;GHOSTIN
0;1;Pressed;
1;1;Released;
`)
	res := runAll(t, s)
	fs := findCode(res.Findings, "empty-column")
	if len(fs) != 1 {
		t.Fatalf("empty-column = %v", fs)
	}
	// GHOSTIN is the 4th header cell of Test_T (line 10 of the stream).
	if p := fs[0].Pos; p.Sheet != "Test_T" || p.Row != 1 || p.Col != 4 || p.Line != 10 {
		t.Errorf("empty-column pos = %+v", p)
	}
	// unstimulated-input anchors at GHOSTIN's SignalDefinition row.
	un := findCode(res.Findings, "unstimulated-input")
	if len(un) != 1 {
		t.Fatalf("unstimulated-input = %v", un)
	}
	if p := un[0].Pos; p.Sheet != "SignalDefinition" || p.Row != 3 || p.Line != 4 {
		t.Errorf("unstimulated-input pos = %+v", p)
	}
}

// Satellite edge cases: limits exactly at boundary equality, empty
// columns on single-step tests, Mentions with prefix names.

func TestLimitBoundaryEquality(t *testing.T) {
	fs := findings(t, `== SignalDefinition ==
signal;direction;class;pin;init
O;out;analog;O;
I;in;digital;I;Stim
== StatusDefinition ==
status;method;attribut;var (x);nom;min;max
Exact;get_u;u;;1;3;3
AlmostFlat;get_u;u;;1;3;3,0001
JustInverted;get_u;u;;1;3,0001;3
Stim;put_r;r;;0;;
== Test_T ==
test step;dt;O;I
0;1;Exact;Stim
1;1;AlmostFlat;
2;1;JustInverted;
`)
	if !hasCode(fs, "degenerate-limits", "Exact") {
		t.Errorf("min==max not flagged degenerate: %v", fs)
	}
	if hasCode(fs, "inverted-limits", "Exact") {
		t.Errorf("min==max flagged inverted: %v", fs)
	}
	if hasCode(fs, "degenerate-limits", "AlmostFlat") || hasCode(fs, "inverted-limits", "AlmostFlat") {
		t.Errorf("narrow-but-valid band flagged: %v", fs)
	}
	if !hasCode(fs, "inverted-limits", "JustInverted") {
		t.Errorf("barely inverted band not flagged: %v", fs)
	}
	if hasCode(fs, "degenerate-limits", "JustInverted") {
		t.Errorf("inverted band double-flagged degenerate: %v", fs)
	}
}

func TestEmptyColumnSingleStep(t *testing.T) {
	// A one-step test: the empty column must be found even though there
	// is only a single row to scan.
	fs := findings(t, `== SignalDefinition ==
signal;direction;class;pin;init
A;in;digital;A;Pressed
B;in;digital;B;Pressed
== StatusDefinition ==
status;method;attribut;var (x);nom;min;max
Pressed;put_r;r;;0;;
== Test_T ==
test step;dt;A;B
0;1;Pressed;
`)
	if !hasCode(fs, "empty-column", `"B"`) {
		t.Errorf("single-step empty column not flagged: %v", fs)
	}
	if hasCode(fs, "empty-column", `"A"`) {
		t.Errorf("assigned column flagged: %v", fs)
	}
}

func TestMentionsPrefixNames(t *testing.T) {
	// DS_RL vs DS_RL_EXT: the quoted match must not fire on a prefix in
	// either direction.
	long := Finding{Severity: Warning, Code: "unstimulated-input",
		Msg: `input signal "DS_RL_EXT" is never stimulated by any test`}
	if long.Mentions("DS_RL") {
		t.Error("prefix of a longer name matched")
	}
	if !long.Mentions("DS_RL_EXT") || !long.Mentions("ds_rl_ext") {
		t.Error("exact name missed")
	}
	short := Finding{Severity: Warning, Code: "unstimulated-input",
		Msg: `input signal "DS_RL" is never stimulated by any test`}
	if short.Mentions("DS_RL_EXT") {
		t.Error("longer name matched a short mention")
	}
}

func TestAnalyzerRegistry(t *testing.T) {
	as := Analyzers()
	if len(as) < 15 {
		t.Fatalf("registry has %d analyzers, want >= 15", len(as))
	}
	seen := map[string]bool{}
	for i, a := range as {
		if a.Doc == "" {
			t.Errorf("analyzer %q lacks a Doc", a.Name)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer %q", a.Name)
		}
		seen[a.Name] = true
		if i > 0 && as[i-1].Name >= a.Name {
			t.Errorf("analyzers not sorted by name")
		}
	}
	for _, want := range []string{
		"unused-status", "unstimulated-input", "unmeasured-output", "missing-init",
		"empty-column", "inverted-limits", "degenerate-limits", "long-test",
		"never-toggled", "unsatisfiable-limits", "unreachable-check", "dead-step",
		"duplicate-scenario", "settle-conflict", "weak-check",
	} {
		if !seen[want] {
			t.Errorf("analyzer %q not registered", want)
		}
	}
}

func TestSeverityJSON(t *testing.T) {
	b, err := json.Marshal(Error)
	if err != nil || string(b) != `"error"` {
		t.Errorf("Marshal(Error) = %s, %v", b, err)
	}
	var s Severity
	if err := json.Unmarshal([]byte(`"warning"`), &s); err != nil || s != Warning {
		t.Errorf("Unmarshal(warning) = %v, %v", s, err)
	}
	if err := json.Unmarshal([]byte(`"nope"`), &s); err == nil {
		t.Error("bad severity accepted")
	}
	if _, err := ParseSeverity("error"); err != nil {
		t.Error(err)
	}
}
