package lint

import (
	"strings"

	"repro/internal/method"
	"repro/internal/sigdef"
	"repro/internal/status"
	"repro/internal/testdef"
	"repro/internal/unit"
)

// The classic single-artifact analyzers, ported from the original flat
// check list. legacyAnalyzers preserves their historical execution
// order for Check.
var legacyAnalyzers = []string{
	"unused-status",
	"unstimulated-input",
	"unmeasured-output",
	"missing-init",
	"empty-column",
	"inverted-limits",
	"degenerate-limits",
	"long-test",
	"never-toggled",
}

func init() {
	Register(&Analyzer{
		Name:     "unused-status",
		Doc:      "flags statuses that no test step and no initial-status column references; dead rows in the status definition sheet usually indicate an abandoned or misspelled status",
		Severity: Warning,
		Run:      runUnusedStatus,
	})
	Register(&Analyzer{
		Name:     "unstimulated-input",
		Doc:      "flags input signals never stimulated by any test (the init block does not count); an unstimulated input is a coverage gap — requirement mutants touching it survive the suite",
		Severity: Warning,
		Run:      runUnstimulatedInput,
	})
	Register(&Analyzer{
		Name:     "unmeasured-output",
		Doc:      "flags output signals never measured by any test; behaviour on that output is entirely unchecked",
		Severity: Warning,
		Run:      runUnmeasuredOutput,
	})
	Register(&Analyzer{
		Name:     "missing-init",
		Doc:      "flags input signals without an initial status; their state before step 0 is undefined on a real stand",
		Severity: Warning,
		Run:      runMissingInit,
	})
	Register(&Analyzer{
		Name:     "empty-column",
		Doc:      "flags test sheet signal columns that assign nothing in any step; the column documents an intent the test does not implement",
		Severity: Warning,
		Run:      runEmptyColumn,
	})
	Register(&Analyzer{
		Name:     "inverted-limits",
		Doc:      "flags measurement statuses whose numeric absolute limits are inverted (min above max); every check against them fails",
		Severity: Warning,
		Run:      runInvertedLimits,
	})
	Register(&Analyzer{
		Name:     "degenerate-limits",
		Doc:      "flags measurement statuses with a zero-width tolerance band (min equals max); real measurements almost never hit an exact value",
		Severity: Warning,
		Run:      runDegenerateLimits,
	})
	Register(&Analyzer{
		Name:     "long-test",
		Doc:      "reports tests whose nominal duration exceeds ten minutes; consider splitting them for faster fault isolation",
		Severity: Info,
		Run:      runLongTest,
	})
	Register(&Analyzer{
		Name:     "never-toggled",
		Doc:      "flags inputs that are assigned but always with the same status; they never change state, so the tests cannot observe the DUT's reaction to them (the root of the paper table's only_fl gap: the rear doors are never opened)",
		Severity: Warning,
		Run:      runNeverToggled,
	})
}

func signalPos(sigs *sigdef.List, sig *sigdef.Signal) Pos {
	return Pos{Sheet: sigs.SheetName, Row: sig.Row, Col: 1, Line: sig.Line}
}

func statusPos(tbl *status.Table, st *status.Status) Pos {
	return Pos{Sheet: tbl.SheetName, Row: st.Row, Col: 1, Line: st.Line}
}

func headerPos(tc *testdef.TestCase) Pos {
	if tc.SheetName == "" {
		return Pos{}
	}
	return Pos{Sheet: tc.SheetName, Row: 1, Line: tc.HeaderLine}
}

func stepPos(tc *testdef.TestCase, step *testdef.Step, signal string) Pos {
	if tc.SheetName == "" {
		return Pos{}
	}
	return Pos{Sheet: tc.SheetName, Row: step.Row, Col: tc.ColumnOf(signal), Line: step.Line}
}

// runUnusedStatus flags statuses no test or init references.
func runUnusedStatus(p *Pass) {
	used := map[string]bool{}
	for _, sig := range p.Signals.Signals() {
		if sig.Init != "" {
			used[strings.ToLower(sig.Init)] = true
		}
	}
	for _, tc := range p.Tests {
		for _, st := range tc.UsedStatuses() {
			used[strings.ToLower(st)] = true
		}
	}
	for _, st := range p.Statuses.Statuses() {
		if !used[strings.ToLower(st.Name)] {
			p.Reportf(statusPos(p.Statuses, st),
				"status %q is defined but never used", st.Name)
		}
	}
}

// touchedSignals returns the lower-cased names of every signal any test
// step assigns.
func touchedSignals(tests []*testdef.TestCase) map[string]bool {
	touched := map[string]bool{}
	for _, tc := range tests {
		for _, step := range tc.Steps {
			for _, a := range step.Assign {
				touched[strings.ToLower(a.Signal)] = true
			}
		}
	}
	return touched
}

func runUnstimulatedInput(p *Pass) {
	touched := touchedSignals(p.Tests)
	for _, sig := range p.Signals.Inputs() {
		if !touched[strings.ToLower(sig.Name)] {
			p.Reportf(signalPos(p.Signals, sig),
				"input signal %q is never stimulated by any test", sig.Name)
		}
	}
}

func runUnmeasuredOutput(p *Pass) {
	touched := touchedSignals(p.Tests)
	for _, sig := range p.Signals.Outputs() {
		if !touched[strings.ToLower(sig.Name)] {
			p.Reportf(signalPos(p.Signals, sig),
				"output signal %q is never measured by any test", sig.Name)
		}
	}
}

func runMissingInit(p *Pass) {
	for _, sig := range p.Signals.Inputs() {
		if strings.TrimSpace(sig.Init) == "" {
			p.Reportf(signalPos(p.Signals, sig),
				"input signal %q has no initial status", sig.Name)
		}
	}
}

func runEmptyColumn(p *Pass) {
	for _, tc := range p.Tests {
		for _, sig := range tc.Signals {
			found := false
			for _, step := range tc.Steps {
				if _, ok := step.Lookup(sig); ok {
					found = true
					break
				}
			}
			if !found {
				pos := headerPos(tc)
				pos.Col = tc.ColumnOf(sig)
				p.Reportf(pos, "test %q lists signal %q but never assigns it", tc.Name, sig)
			}
		}
	}
}

// numericLimits returns the parsed absolute limits of a measurement
// status, or ok=false when the status is no plain-numeric range check
// (bits payloads and expression limits are handled elsewhere).
func numericLimits(st *status.Status) (lo, hi float64, ok bool) {
	if !st.Desc.IsMeasure() || st.Desc.Attr(st.Desc.RangeAttr) != nil &&
		st.Desc.Attr(st.Desc.RangeAttr).Kind == method.Bits {
		return 0, 0, false
	}
	lo, err1 := unit.ParseNumber(st.Min)
	hi, err2 := unit.ParseNumber(st.Max)
	if err1 != nil || err2 != nil {
		return 0, 0, false // expressions: see unsatisfiable-limits
	}
	return lo, hi, true
}

func runInvertedLimits(p *Pass) {
	for _, st := range p.Statuses.Statuses() {
		if lo, hi, ok := numericLimits(st); ok && lo > hi {
			p.Reportf(statusPos(p.Statuses, st),
				"status %q has min %v above max %v", st.Name, lo, hi)
		}
	}
}

func runDegenerateLimits(p *Pass) {
	for _, st := range p.Statuses.Statuses() {
		if lo, hi, ok := numericLimits(st); ok && lo == hi {
			p.Reportf(statusPos(p.Statuses, st),
				"status %q has a zero-width tolerance band at %v", st.Name, lo)
		}
	}
}

func runLongTest(p *Pass) {
	for _, tc := range p.Tests {
		if d := tc.Duration(); d > 600 {
			p.Reportf(headerPos(tc),
				"test %q runs %.0f s nominal; consider splitting", tc.Name, d)
		}
	}
}

func runNeverToggled(p *Pass) {
	values := map[string]map[string]bool{}
	for _, tc := range p.Tests {
		for _, step := range tc.Steps {
			for _, a := range step.Assign {
				key := strings.ToLower(a.Signal)
				if values[key] == nil {
					values[key] = map[string]bool{}
				}
				values[key][strings.ToLower(a.Status)] = true
			}
		}
	}
	for _, sig := range p.Signals.Inputs() {
		vs := values[strings.ToLower(sig.Name)]
		if len(vs) != 1 {
			continue
		}
		only := ""
		for v := range vs {
			only = v
		}
		// Re-assigning exactly the initial status means the input never
		// leaves its resting state at all.
		note := ""
		if strings.EqualFold(only, sig.Init) {
			note = " (and it equals the initial status)"
		}
		p.Reportf(signalPos(p.Signals, sig),
			"input signal %q is only ever assigned status %q%s", sig.Name, only, note)
	}
}
