package lint

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// Baseline is a committed snapshot of accepted findings. CI compares a
// fresh run against it and fails only on findings the baseline does not
// cover — a ratchet: existing debt is tolerated, new debt is not.
// Entries are keyed on (code, sheet, message) but NOT on row, so
// inserting rows above a known finding does not break the build; Count
// bounds how many identical findings the key absorbs.
type Baseline struct {
	Version int             `json:"version"`
	Entries []BaselineEntry `json:"entries"`
}

// BaselineEntry accepts Count findings matching (Code, Sheet, Msg).
type BaselineEntry struct {
	Code  string `json:"code"`
	Sheet string `json:"sheet,omitempty"`
	Msg   string `json:"msg"`
	Count int    `json:"count"`
}

// baselineVersion is the current file format version.
const baselineVersion = 1

func baselineKey(code, sheetName, msg string) string {
	return code + "\x00" + strings.ToLower(sheetName) + "\x00" + msg
}

// NewBaseline aggregates findings into a baseline, sorted by key so the
// file is byte-stable.
func NewBaseline(fs []Finding) *Baseline {
	counts := map[string]*BaselineEntry{}
	var order []string
	for _, f := range fs {
		key := baselineKey(f.Code, f.Pos.Sheet, f.Msg)
		if e := counts[key]; e != nil {
			e.Count++
			continue
		}
		counts[key] = &BaselineEntry{Code: f.Code, Sheet: f.Pos.Sheet, Msg: f.Msg, Count: 1}
		order = append(order, key)
	}
	sort.Strings(order)
	b := &Baseline{Version: baselineVersion}
	for _, key := range order {
		b.Entries = append(b.Entries, *counts[key])
	}
	return b
}

// Apply returns the findings the baseline does not cover, consuming
// entry counts in finding order.
func (b *Baseline) Apply(fs []Finding) []Finding {
	budget := map[string]int{}
	for _, e := range b.Entries {
		n := e.Count
		if n <= 0 {
			n = 1
		}
		budget[baselineKey(e.Code, e.Sheet, e.Msg)] += n
	}
	var fresh []Finding
	for _, f := range fs {
		key := baselineKey(f.Code, f.Pos.Sheet, f.Msg)
		if budget[key] > 0 {
			budget[key]--
			continue
		}
		fresh = append(fresh, f)
	}
	return fresh
}

// WriteBaseline writes the baseline as indented JSON.
func WriteBaseline(w io.Writer, b *Baseline) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// ReadBaselineFile loads a baseline file.
func ReadBaselineFile(path string) (*Baseline, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(raw, &b); err != nil {
		return nil, fmt.Errorf("lint: baseline %s: %v", path, err)
	}
	if b.Version != baselineVersion {
		return nil, fmt.Errorf("lint: baseline %s: unsupported version %d", path, b.Version)
	}
	return &b, nil
}

// WriteBaselineFile writes a baseline file.
func WriteBaselineFile(path string, b *Baseline) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteBaseline(f, b); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
