package lint

import (
	"encoding/json"
	"fmt"
	"io"
)

// WorkbookReport is the vet result for one workbook file.
type WorkbookReport struct {
	File       string    `json:"file"`
	Findings   []Finding `json:"findings"`
	Suppressed int       `json:"suppressed,omitempty"`
}

// Report is the vet result for a whole invocation.
type Report struct {
	Workbooks []WorkbookReport `json:"workbooks"`
}

// Count tallies findings at or above the severity.
func (r *Report) Count(min Severity) int {
	n := 0
	for _, wb := range r.Workbooks {
		for _, f := range wb.Findings {
			if f.Severity >= min {
				n++
			}
		}
	}
	return n
}

// WriteText renders findings one per line, anchored at file:line when
// the position is known:
//
//	testdata/x.csw:17: error unsatisfiable-limits: ... (StatusDefinition row 3)
func WriteText(w io.Writer, r *Report) error {
	for _, wb := range r.Workbooks {
		for _, f := range wb.Findings {
			anchor := wb.File
			if f.Pos.Line > 0 {
				anchor = fmt.Sprintf("%s:%d", wb.File, f.Pos.Line)
			}
			loc := ""
			if p := f.Pos.String(); p != "" {
				loc = " (" + p + ")"
			}
			if _, err := fmt.Fprintf(w, "%s: %s%s\n", anchor, f.String(), loc); err != nil {
				return err
			}
		}
		if wb.Suppressed > 0 {
			if _, err := fmt.Fprintf(w, "%s: %d finding(s) suppressed by %s directives\n",
				wb.File, wb.Suppressed, IgnoreDirective); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteJSON renders the report as indented JSON with a trailing
// newline. Field order is fixed by the struct definitions and findings
// are position-sorted by Run, so the output is byte-stable.
func WriteJSON(w io.Writer, r *Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ------------------------------------------------------------- SARIF --

// Minimal SARIF 2.1.0 document: one run, one rule per registered
// analyzer, one result per finding. Enough for the GitHub code-scanning
// API and for SARIF viewers to anchor findings at workbook lines.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations,omitempty"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           *sarifRegion  `json:"region,omitempty"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

func sarifLevel(s Severity) string {
	switch s {
	case Error:
		return "error"
	case Warning:
		return "warning"
	}
	return "note"
}

// WriteSARIF renders the report as a SARIF 2.1.0 document.
func WriteSARIF(w io.Writer, r *Report) error {
	driver := sarifDriver{Name: "comptest vet"}
	for _, a := range Analyzers() {
		driver.Rules = append(driver.Rules, sarifRule{
			ID:               a.Name,
			ShortDescription: sarifMessage{Text: a.Doc},
		})
	}
	run := sarifRun{Tool: sarifTool{Driver: driver}, Results: []sarifResult{}}
	for _, wb := range r.Workbooks {
		for _, f := range wb.Findings {
			res := sarifResult{
				RuleID:  f.Code,
				Level:   sarifLevel(f.Severity),
				Message: sarifMessage{Text: f.Msg},
			}
			loc := sarifLocation{PhysicalLocation: sarifPhysical{
				ArtifactLocation: sarifArtifact{URI: wb.File},
			}}
			if f.Pos.Line > 0 {
				loc.PhysicalLocation.Region = &sarifRegion{StartLine: f.Pos.Line}
			}
			res.Locations = append(res.Locations, loc)
			run.Results = append(run.Results, res)
		}
	}
	doc := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{run},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&doc)
}
