package lint

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"repro/internal/report"
)

// KillMatrix is the lint view of a saved mutation strength report
// (report.Strength as written by `comptest mutate -format json`): which
// signals' checks ever witnessed a mutant kill. The weak-check analyzer
// joins it against the test sheets to flag checks with no demonstrated
// fault-detection power.
type KillMatrix struct {
	killedSignals map[string]bool
	mutants       int
	killed        int
}

// KillMatrixFromStrength digests a strength report. A check "witnessed
// a kill" when a killed mutant's witness string names its signal —
// witnesses have the fixed shape "<script> step <n>: <signal> <method>
// expected <x>, measured <y>" produced by the mutation runner.
func KillMatrixFromStrength(s *report.Strength) *KillMatrix {
	k := &KillMatrix{killedSignals: map[string]bool{}}
	for _, d := range s.DUTs {
		for _, m := range d.Mutants {
			k.mutants++
			if !m.Killed {
				continue
			}
			k.killed++
			if sig := witnessSignal(m.Witness); sig != "" {
				k.killedSignals[strings.ToLower(sig)] = true
			}
		}
	}
	return k
}

// ReadKillMatrixFile loads a strength JSON file into a KillMatrix.
func ReadKillMatrixFile(path string) (*KillMatrix, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s report.Strength
	if err := json.Unmarshal(raw, &s); err != nil {
		return nil, fmt.Errorf("lint: kill matrix %s: %v", path, err)
	}
	return KillMatrixFromStrength(&s), nil
}

// KilledSignal reports whether any killed mutant's witness named the
// signal.
func (k *KillMatrix) KilledSignal(name string) bool {
	return k.killedSignals[strings.ToLower(strings.TrimSpace(name))]
}

// Summary renders "N/M mutants killed" for finding messages.
func (k *KillMatrix) Summary() string {
	return fmt.Sprintf("%d/%d mutants killed", k.killed, k.mutants)
}

// witnessSignal extracts the signal name from a kill witness string, or
// "" when the witness does not follow the runner's shape.
func witnessSignal(w string) string {
	i := strings.Index(w, ": ")
	if i < 0 {
		return ""
	}
	fields := strings.Fields(w[i+2:])
	if len(fields) == 0 {
		return ""
	}
	return fields[0]
}
