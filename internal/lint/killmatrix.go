package lint

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"repro/internal/report"
)

// KillMatrix is the lint view of a saved mutation strength report
// (report.Strength as written by `comptest mutate -format json`): which
// signals' checks ever witnessed a mutant kill. The weak-check analyzer
// joins it against the test sheets to flag checks with no demonstrated
// fault-detection power.
type KillMatrix struct {
	killedSignals map[string]bool
	scriptKills   map[string]int
	mutants       int
	killed        int
}

// KillMatrixFromStrength digests a strength report. A check "witnessed
// a kill" when a killed mutant's witness string names its signal —
// witnesses have the fixed shape "<script> step <n>: <signal> <method>
// expected <x>, measured <y>" produced by the mutation runner.
func KillMatrixFromStrength(s *report.Strength) *KillMatrix {
	k := &KillMatrix{killedSignals: map[string]bool{}, scriptKills: map[string]int{}}
	for _, d := range s.DUTs {
		for _, m := range d.Mutants {
			k.mutants++
			if !m.Killed {
				continue
			}
			k.killed++
			if sig := witnessSignal(m.Witness); sig != "" {
				k.killedSignals[strings.ToLower(sig)] = true
			}
			if sc := witnessScript(m.Witness); sc != "" {
				k.scriptKills[strings.ToLower(sc)]++
			}
		}
	}
	return k
}

// ReadKillMatrixFile loads a strength JSON file into a KillMatrix.
func ReadKillMatrixFile(path string) (*KillMatrix, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s report.Strength
	if err := json.Unmarshal(raw, &s); err != nil {
		return nil, fmt.Errorf("lint: kill matrix %s: %v", path, err)
	}
	return KillMatrixFromStrength(&s), nil
}

// KilledSignal reports whether any killed mutant's witness named the
// signal.
func (k *KillMatrix) KilledSignal(name string) bool {
	return k.killedSignals[strings.ToLower(strings.TrimSpace(name))]
}

// Summary renders "N/M mutants killed" for finding messages.
func (k *KillMatrix) Summary() string {
	return fmt.Sprintf("%d/%d mutants killed", k.killed, k.mutants)
}

// ScriptKills returns how many killed mutants were witnessed by the
// named script — the demonstrated fault-detection power the mutation
// runner uses to order each mutant's scripts most-lethal-first, so
// early kill terminates most mutants on their first run.
func (k *KillMatrix) ScriptKills(name string) int {
	return k.scriptKills[strings.ToLower(strings.TrimSpace(name))]
}

// witnessScript extracts the script name from a kill witness string
// ("<script> step <n>: …"), or "" for other shapes (fatal aborts).
func witnessScript(w string) string {
	i := strings.Index(w, " step ")
	if i <= 0 {
		return ""
	}
	return w[:i]
}

// witnessSignal extracts the signal name from a kill witness string, or
// "" when the witness does not follow the runner's shape.
func witnessSignal(w string) string {
	i := strings.Index(w, ": ")
	if i < 0 {
		return ""
	}
	fields := strings.Fields(w[i+2:])
	if len(fields) == 0 {
		return ""
	}
	return fields[0]
}
