package lint

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/method"
	"repro/internal/status"
	"repro/internal/unit"
)

// The cross-artifact analyzers: checks the flat model could not
// express, joining the status table with the expression evaluator, the
// stand configuration and the saved mutation kill matrix.

func init() {
	Register(&Analyzer{
		Name:     "unsatisfiable-limits",
		Doc:      "evaluates expression-valued measurement limits (e.g. \"(0.7*ubatt)\") against the stand profiles' supply voltages and flags statuses whose limit band is inverted under every profile; such checks can never pass anywhere",
		Severity: Error,
		Run:      runUnsatisfiableLimits,
	})
	Register(&Analyzer{
		Name:     "unreachable-check",
		Doc:      "flags test steps that assign a measurement status whose limits are unsatisfiable (inverted numerically or under every stand profile); the check is guaranteed to fail and the step after it is never reached meaningfully",
		Severity: Error,
		Run:      runUnreachableCheck,
	})
	Register(&Analyzer{
		Name:     "dead-step",
		Doc:      "flags steps whose assignments only re-apply stimuli that are already in effect and measure nothing; the step consumes test time without changing or observing anything",
		Severity: Warning,
		Run:      runDeadStep,
	})
	Register(&Analyzer{
		Name:     "duplicate-scenario",
		Doc:      "flags test sheets whose step sequence (durations and assignments) is identical to an earlier test's; duplicated scenarios double campaign time without adding coverage",
		Severity: Warning,
		Run:      runDuplicateScenario,
	})
	Register(&Analyzer{
		Name:     "settle-conflict",
		Doc:      "flags steps that stimulate and measure in the same step with a duration below the stand settle time; the measurement races the signal still settling",
		Severity: Warning,
		Run:      runSettleConflict,
	})
	Register(&Analyzer{
		Name:     "weak-check",
		Doc:      "joins a saved mutation kill matrix and flags measured checks on signals that never witnessed a mutant kill; the check runs but has demonstrated no fault-detection power",
		Severity: Info,
		Run:      runWeakCheck,
	})
}

// unsatisfiable reports, per environment, whether the status' evaluated
// limit band is inverted. Plain numeric limits are environment-free and
// covered by inverted-limits; this analyzer only considers statuses
// with at least one expression limit (a Var factor or a non-numeric
// Min/Max cell).
func unsatisfiableUnder(st *status.Status, envs []LimitEnv) (bad []string) {
	if !st.Desc.IsMeasure() {
		return nil
	}
	if a := st.Desc.Attr(st.Desc.RangeAttr); a != nil && a.Kind == method.Bits {
		return nil
	}
	_, err1 := unit.ParseNumber(st.Min)
	_, err2 := unit.ParseNumber(st.Max)
	if strings.TrimSpace(st.Var) == "" && err1 == nil && err2 == nil {
		return nil // plain numeric: inverted-limits territory
	}
	for _, e := range envs {
		lo, hi, err := st.EvalLimits(e.Env)
		if err != nil {
			continue // malformed cells are hard validation errors
		}
		if lo > hi {
			bad = append(bad, fmt.Sprintf("%s (min %v, max %v)", e.Name, lo, hi))
		}
	}
	return bad
}

func runUnsatisfiableLimits(p *Pass) {
	envs := p.envs()
	for _, st := range p.Statuses.Statuses() {
		bad := unsatisfiableUnder(st, envs)
		if len(bad) == 0 {
			continue
		}
		scope := "under " + strings.Join(bad, ", ")
		if len(bad) == len(envs) {
			scope = "under every profile: " + strings.Join(bad, ", ")
		}
		p.Reportf(statusPos(p.Statuses, st),
			"status %q has an inverted limit band %s", st.Name, scope)
	}
}

// unsatisfiableStatuses returns the lower-cased names of measurement
// statuses that can never pass: numeric limits inverted, or expression
// limits inverted under every environment.
func unsatisfiableStatuses(p *Pass) map[string]bool {
	envs := p.envs()
	out := map[string]bool{}
	for _, st := range p.Statuses.Statuses() {
		if lo, hi, ok := numericLimits(st); ok {
			if lo > hi {
				out[strings.ToLower(st.Name)] = true
			}
			continue
		}
		if bad := unsatisfiableUnder(st, envs); len(bad) > 0 && len(bad) == len(envs) {
			out[strings.ToLower(st.Name)] = true
		}
	}
	return out
}

func runUnreachableCheck(p *Pass) {
	unsat := unsatisfiableStatuses(p)
	if len(unsat) == 0 {
		return
	}
	for _, tc := range p.Tests {
		for i := range tc.Steps {
			step := &tc.Steps[i]
			for _, a := range step.Assign {
				if !unsat[strings.ToLower(a.Status)] {
					continue
				}
				p.Reportf(stepPos(tc, step, a.Signal),
					"check %q on signal %q in test %q step %d can never pass: its limits are unsatisfiable",
					a.Status, a.Signal, tc.Name, step.Index)
			}
		}
	}
}

// isMeasure reports whether assigning the named status performs a
// measurement (as opposed to a stimulus or control action).
func isMeasure(tbl *status.Table, statusName string) bool {
	st, ok := tbl.Lookup(statusName)
	return ok && st.Desc.IsMeasure()
}

func runDeadStep(p *Pass) {
	for _, tc := range p.Tests {
		// state tracks the status currently applied to each stimulated
		// signal, seeded from the init column.
		state := map[string]string{}
		for _, sig := range p.Signals.Signals() {
			if strings.TrimSpace(sig.Init) != "" {
				state[strings.ToLower(sig.Name)] = strings.ToLower(sig.Init)
			}
		}
		for i := range tc.Steps {
			step := &tc.Steps[i]
			if len(step.Assign) == 0 {
				continue // a bare wait step is deliberate
			}
			dead := true
			for _, a := range step.Assign {
				if isMeasure(p.Statuses, a.Status) {
					dead = false
					continue
				}
				key := strings.ToLower(a.Signal)
				if state[key] != strings.ToLower(a.Status) {
					dead = false
				}
				state[key] = strings.ToLower(a.Status)
			}
			if dead {
				p.Reportf(stepPos(tc, step, step.Assign[0].Signal),
					"test %q step %d only re-applies stimuli already in effect and measures nothing",
					tc.Name, step.Index)
			}
		}
	}
}

func runDuplicateScenario(p *Pass) {
	seen := map[string]string{} // fingerprint -> first test name
	for _, tc := range p.Tests {
		var b strings.Builder
		for _, step := range tc.Steps {
			fmt.Fprintf(&b, "%v|", step.Dt)
			assigns := make([]string, 0, len(step.Assign))
			for _, a := range step.Assign {
				assigns = append(assigns, strings.ToLower(a.Signal)+"="+strings.ToLower(a.Status))
			}
			sort.Strings(assigns)
			b.WriteString(strings.Join(assigns, ","))
			b.WriteString("\n")
		}
		fp := b.String()
		if first, dup := seen[fp]; dup {
			p.Reportf(headerPos(tc),
				"test %q duplicates the step sequence of test %q", tc.Name, first)
			continue
		}
		seen[fp] = tc.Name
	}
}

func runSettleConflict(p *Pass) {
	settle := p.settleTime().Seconds()
	for _, tc := range p.Tests {
		for i := range tc.Steps {
			step := &tc.Steps[i]
			if step.Dt >= settle {
				continue
			}
			stimulates, measures := false, ""
			for _, a := range step.Assign {
				if isMeasure(p.Statuses, a.Status) {
					if measures == "" {
						measures = a.Signal
					}
				} else {
					stimulates = true
				}
			}
			if stimulates && measures != "" {
				p.Reportf(stepPos(tc, step, measures),
					"test %q step %d stimulates and measures %q within %v s, below the stand settle time of %v s",
					tc.Name, step.Index, measures, step.Dt, settle)
			}
		}
	}
}

func runWeakCheck(p *Pass) {
	if p.Kills == nil {
		return
	}
	for _, tc := range p.Tests {
		reported := map[string]bool{} // one finding per (test, signal)
		for i := range tc.Steps {
			step := &tc.Steps[i]
			for _, a := range step.Assign {
				if !isMeasure(p.Statuses, a.Status) {
					continue
				}
				key := strings.ToLower(a.Signal)
				if reported[key] || p.Kills.KilledSignal(a.Signal) {
					continue
				}
				reported[key] = true
				p.Reportf(stepPos(tc, step, a.Signal),
					"measured check on signal %q in test %q (first at step %d) never witnessed a mutant kill in the saved matrix (%s)",
					a.Signal, tc.Name, step.Index, p.Kills.Summary())
			}
		}
	}
}
